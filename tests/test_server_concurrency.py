"""Threaded serving layer: cache churn, catalog races, writer/reader stress."""

from __future__ import annotations

import threading

import pytest

from repro.catalog.schema import ColumnType, make_schema
from repro.engine import Database
from repro.engine.plancache import PlanCache
from repro.errors import AdmissionError, ServerError
from repro.server import Server, ServerConfig, StatementResult

COUNT_SQL = "SELECT count(e.id) AS n, sum(e.flag) AS f FROM events AS e"
GROUPED_SQL = (
    "SELECT e.grp AS g, count(e.id) AS n FROM events AS e "
    "GROUP BY e.grp ORDER BY g"
)

#: Every load is exactly this many rows, so any reader observing a count
#: that is not a multiple of it has seen a torn batch.
BATCH = 25


def _events_db() -> Database:
    db = Database()
    db.create_table(
        make_schema(
            "events",
            [("id", ColumnType.INT), ("grp", ColumnType.INT), ("flag", ColumnType.INT)],
        )
    )
    db.load_rows("events", _batch(0))
    db.finalize_load()
    return db


def _batch(serial: int):
    base = serial * BATCH
    return [(base + i, (base + i) % 10, 1) for i in range(BATCH)]


def _run_threads(threads, errors):
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [], errors


class TestPlanCacheThreadSafety:
    def test_multithreaded_churn_keeps_invariants(self):
        cache = PlanCache(capacity=8)
        errors = []
        barrier = threading.Barrier(6)

        def churn(worker: int) -> None:
            try:
                barrier.wait()
                for i in range(400):
                    epoch = (worker + i) % 5
                    key = (f"stmt-{i % 16}", epoch)
                    if cache.get(key, epoch=epoch) is None:
                        cache.put(key, object(), epoch=epoch)
                    if i % 97 == 0:
                        cache.clear()
            except BaseException as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        _run_threads(
            [threading.Thread(target=churn, args=(w,)) for w in range(6)], errors
        )
        assert len(cache) <= 8
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses == 6 * 400

    def test_stale_epoch_probe_never_clobbers_newer_entries(self):
        cache = PlanCache(capacity=8)
        new_plan = object()
        cache.put(("q", 5), new_plan, epoch=5)
        # A session still pinned at epoch 3 probes with its old epoch: miss,
        # but the epoch-5 entry survives.
        assert cache.get(("q", 3), epoch=3) is None
        assert cache.get(("q", 5), epoch=5) is new_plan


class TestCatalogRaces:
    def test_transient_churn_races_epoch_bumps_and_snapshots(self):
        db = _events_db()
        catalog = db.catalog
        base_tables = set(catalog.table_names())
        base_epoch = catalog.epoch
        bumps_per_thread, rounds = 50, 60
        errors = []

        def transient_churn(worker: int) -> None:
            try:
                for i in range(rounds):
                    name = f"__mid_{worker}_{i}"
                    schema = make_schema(name, [("x", ColumnType.INT)])
                    from repro.storage.table import Table

                    catalog.register_transient(schema, Table(schema))
                    catalog.drop_transient(name)
            except BaseException as exc:
                errors.append(exc)

        def epoch_churn() -> None:
            try:
                for _ in range(bumps_per_thread):
                    catalog.bump_epoch()
            except BaseException as exc:
                errors.append(exc)

        def snapshot_churn() -> None:
            try:
                for _ in range(rounds):
                    snap = catalog.snapshot()
                    # Transients never leak into a snapshot.
                    assert set(snap.table_names()) == {"events"}
                    assert snap.table("events").row_count % BATCH == 0
            except BaseException as exc:
                errors.append(exc)

        threads = (
            [threading.Thread(target=transient_churn, args=(w,)) for w in range(3)]
            + [threading.Thread(target=epoch_churn) for _ in range(2)]
            + [threading.Thread(target=snapshot_churn) for _ in range(2)]
        )
        _run_threads(threads, errors)
        assert set(catalog.table_names()) == base_tables
        assert catalog.epoch == base_epoch + 2 * bumps_per_thread


class TestServerLifecycle:
    def test_one_shot_execute_and_stats(self):
        with Server(_events_db(), ServerConfig(workers=2)) as server:
            result = server.execute(COUNT_SQL)
            assert isinstance(result, StatementResult)
            assert result.rows == ((BATCH, BATCH),)
            assert result.rowcount == 1
            # PEP 249 seven-tuples, column name first.
            assert [d[0] for d in result.description] == ["n", "f"]
            assert result.epoch == server.database.catalog.epoch
        assert server.stats.statements == 1
        assert server.stats.errors == 0
        assert server.stats.p99_seconds >= server.stats.p50_seconds >= 0

    def test_close_is_idempotent_and_rejects_new_work(self):
        server = Server(_events_db(), ServerConfig(workers=2))
        session = server.session()
        server.close()
        server.close()
        assert server.closed
        with pytest.raises(ServerError):
            server.session()
        with pytest.raises(ServerError):
            session.submit(COUNT_SQL)

    def test_closed_session_rejects_statements_and_writes(self):
        with Server(_events_db()) as server:
            with server.session() as session:
                assert session.execute(COUNT_SQL).rowcount == 1
            assert session.closed
            with pytest.raises(ServerError):
                session.submit(COUNT_SQL)
            with pytest.raises(ServerError):
                session.analyze(["events"])

    def test_statement_errors_are_relayed_not_fatal(self):
        with Server(_events_db(), ServerConfig(workers=1)) as server:
            session = server.session()
            with pytest.raises(Exception):
                session.execute("SELECT nope.x FROM nope AS nope")
            # The worker survives and keeps serving.
            assert session.execute(COUNT_SQL).rows == ((BATCH, BATCH),)
        assert server.stats.errors == 1

    def test_sessions_share_the_plan_cache(self):
        with Server(_events_db(), ServerConfig(workers=2)) as server:
            first = server.session()
            second = server.session()
            assert not first.execute(COUNT_SQL).plan_cached
            assert second.execute(COUNT_SQL).plan_cached
            # Epoch bump (ANALYZE) invalidates; the next statement replans.
            first.analyze(["events"])
            assert not second.execute(COUNT_SQL).plan_cached
            assert first.execute(COUNT_SQL).plan_cached
            assert server.plan_cache.stats.hits >= 2


class _BlockingSession:
    """Stub session whose statement parks a worker until the gate opens."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate

    def _run_statement(self, sql, params) -> StatementResult:
        self.gate.wait(timeout=10)
        return StatementResult(
            rows=(),
            description=(),
            epoch=0,
            plan_cached=False,
            reoptimized=False,
            latency_seconds=0.0,
            session_id=0,
        )


class TestAdmissionControl:
    def test_full_queue_sheds_with_admission_error(self):
        server = Server(
            _events_db(),
            ServerConfig(workers=1, queue_depth=1, admission_timeout=0.0),
        )
        gate = threading.Event()
        blocker = _BlockingSession(gate)
        session = server.session()
        try:
            parked = server.submit(blocker, "-- block", None)
            # Wait until the single worker has taken the blocking statement
            # off the queue, then fill the one queue slot.
            while len(server._queue) > 0:
                pass
            queued = session.submit(COUNT_SQL)
            with pytest.raises(AdmissionError):
                session.submit(COUNT_SQL)
            assert server.stats.shed == 1
        finally:
            gate.set()
            server.close()
        assert parked.result(timeout=10).rowcount == 0
        # The admitted statement still completed correctly after the shed.
        assert queued.result(timeout=10).rows == ((BATCH, BATCH),)


class TestServingStress:
    def test_writers_churn_while_readers_pin_consistent_snapshots(self):
        db = _events_db()
        config = ServerConfig(workers=4, queue_depth=64, admission_timeout=5.0)
        writer_rounds, writers, readers = 12, 2, 4
        errors = []
        done = threading.Event()

        with Server(db, config) as server:
            def writer(worker: int) -> None:
                try:
                    session = server.session()
                    for i in range(writer_rounds):
                        # Batches get globally unique serials per writer.
                        serial = 1 + worker * writer_rounds + i
                        session.load_rows("events", _batch(serial))
                        session.analyze(["events"])
                        if i % 4 == 0:
                            # DDL churn: epoch bumps from table registration.
                            session.create_table(
                                make_schema(
                                    f"scratch_{worker}_{i}",
                                    [("x", ColumnType.INT)],
                                )
                            )
                except BaseException as exc:
                    errors.append(exc)

            def reader() -> None:
                try:
                    session = server.session()
                    served = 0
                    while not done.is_set() or served == 0:
                        result = session.execute(COUNT_SQL, timeout=30)
                        ((count, flagged),) = result.rows
                        # Loads are atomic vs. snapshots: never a torn batch,
                        # and the aggregate is internally consistent.
                        assert count % BATCH == 0, count
                        assert flagged == count
                        served += 1
                except BaseException as exc:
                    errors.append(exc)

            writer_threads = [
                threading.Thread(target=writer, args=(w,)) for w in range(writers)
            ]
            reader_threads = [threading.Thread(target=reader) for _ in range(readers)]
            for thread in reader_threads + writer_threads:
                thread.start()
            for thread in writer_threads:
                thread.join()
            done.set()
            for thread in reader_threads:
                thread.join()
            assert errors == [], errors

            # Differential oracle: replay the same batches serially into a
            # fresh database and compare the final grouped result.
            serial_db = _events_db()
            for worker in range(writers):
                for i in range(writer_rounds):
                    serial_db.load_rows(
                        "events", _batch(1 + worker * writer_rounds + i)
                    )
            expected = serial_db.run(GROUPED_SQL).rows
            final = server.session().execute(GROUPED_SQL, timeout=30)
            assert list(final.rows) == expected

            total = (1 + writers * writer_rounds) * BATCH
            assert db.catalog.table("events").row_count == total
            scratch = [n for n in db.catalog.table_names() if n.startswith("scratch_")]
            assert len(scratch) == writers * len(range(0, writer_rounds, 4))
        assert server.stats.errors == 0
