"""Morsel-driven parallel engine: determinism, fused kernels, metrics.

The parallel engine's contract is bit-identical results at any worker count
and morsel size — deterministic order is restored by morsel index at every
gather point, never by re-sorting.  These tests pin that contract at worker
counts 1, 2 and 8, exercise the fused filter kernel codegen (including its
fallbacks and its compile cache) and check the per-morsel accounting that
EXPLAIN ANALYZE renders.
"""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.catalog import ColumnType, make_schema
from repro.core.triggers import ReoptimizationPolicy
from repro.engine import Database, ExecutionEngine
from repro.engine.settings import EngineSettings
from repro.executor.batch import ColumnBatch
from repro.executor.expressions import compile_fused_filter
from repro.executor.explain import explain_plan
from repro.optimizer.plan import JoinNode, ScanNode

WORKER_COUNTS = (1, 2, 8)
MORSEL_SIZE = 7  # far below the table sizes, so scans split into many morsels


def build_db(engine: ExecutionEngine = ExecutionEngine.VECTORIZED, **knobs) -> Database:
    db = Database(EngineSettings(engine=engine, **knobs))
    db.create_table(
        make_schema(
            "t",
            [("id", ColumnType.INT), ("v", ColumnType.INT), ("s", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "u",
            [("id", ColumnType.INT), ("tid", ColumnType.INT), ("w", ColumnType.INT)],
            primary_key="id",
            foreign_keys=[("tid", "t", "id")],
        )
    )
    texts = ["a", "ab", "b", None, "ba"]
    db.load_rows(
        "t",
        [
            (i, None if i % 11 == 0 else i % 7, texts[i % len(texts)])
            for i in range(1, 121)
        ],
    )
    db.load_rows(
        "u",
        [
            (i, (i * 3) % 120 + 1, None if i % 13 == 0 else i % 9)
            for i in range(1, 91)
        ],
    )
    db.finalize_load()
    return db


#: Queries spanning the operator surface the parallel engine touches: fused
#: arithmetic/LIKE/IN/BETWEEN/NULL kernels, fusion fallbacks (CASE), joins
#: with fan-out, star output, grouping, DISTINCT, ORDER BY + LIMIT ties.
QUERIES = [
    "SELECT t.id, t.v FROM t WHERE (t.v * 2 - 1) % 3 = 0 AND t.id / 2 >= 10",
    "SELECT t.id FROM t WHERE t.s LIKE 'a%' OR t.v IN (1, 2, 3) OR t.v IS NULL",
    "SELECT t.id FROM t WHERE NOT (t.v BETWEEN 2 AND 5) AND t.s IS NOT NULL",
    "SELECT t.id FROM t WHERE t.v / 0 IS NULL ORDER BY t.id LIMIT 10",
    "SELECT count(*) AS n FROM t WHERE CASE WHEN t.v > 2 THEN 1 ELSE 0 END = 1",
    "SELECT t.id, u.w FROM t, u WHERE t.id = u.tid AND t.v > 1 "
    "ORDER BY u.w, t.id LIMIT 9",
    "SELECT * FROM t, u WHERE t.id = u.tid ORDER BY t.v DESC LIMIT 7",
    "SELECT t.v AS k, count(*) AS n, sum(u.w) AS s FROM t, u "
    "WHERE t.id = u.tid GROUP BY t.v ORDER BY k",
    "SELECT DISTINCT t.v FROM t WHERE t.s LIKE '%b%' ORDER BY t.v",
]


class TestDeterministicParallelExecution:
    def test_identical_results_at_every_worker_count(self):
        """Workers 1, 2 and 8 all reproduce the serial engines exactly."""
        db = build_db()
        for sql in QUERIES:
            planned = db.plan(sql)
            serial = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
            oracle = db.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan)
            assert list(serial.result.rows) == list(oracle.result.rows), sql
            for workers in WORKER_COUNTS:
                parallel = db.executor_for(
                    ExecutionEngine.PARALLEL,
                    workers=workers,
                    morsel_size=MORSEL_SIZE,
                ).execute(planned.plan)
                assert list(parallel.result.rows) == list(serial.result.rows), (
                    sql,
                    workers,
                )
                assert parallel.result.columns == serial.result.columns, sql
                assert parallel.total_work == serial.total_work, (sql, workers)
                for node_id, metrics in serial.node_metrics.items():
                    assert (
                        parallel.node_metrics[node_id].actual_rows
                        == metrics.actual_rows
                    ), (sql, workers, metrics.label)

    def test_morsel_size_does_not_change_results(self):
        db = build_db()
        sql = QUERIES[5]
        planned = db.plan(sql)
        serial = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
        for morsel_size in (1, 3, 64, 100000):
            parallel = db.executor_for(
                ExecutionEngine.PARALLEL, workers=4, morsel_size=morsel_size
            ).execute(planned.plan)
            assert list(parallel.result.rows) == list(serial.result.rows), morsel_size

    def test_serving_pipeline_on_parallel_engine(self):
        """connect() knobs route statements through the morsel engine."""
        serial_rows = [
            repro.connect(build_db(), reoptimize=False).execute(sql).fetchall()
            for sql in QUERIES
        ]
        conn = repro.connect(
            build_db(), reoptimize=False, engine="parallel", workers=4, morsel_size=MORSEL_SIZE
        )
        for sql, expected in zip(QUERIES, serial_rows):
            assert conn.execute(sql).fetchall() == expected, sql

    def test_adaptive_reoptimization_over_parallel_engine(self):
        """Stage-wise pauses are gather barriers: adaptive + parallel agree."""
        expected = Counter(
            repro.connect(build_db(), reoptimize=False)
            .execute(QUERIES[7])
            .fetchall()
        )
        db = build_db(
            ExecutionEngine.PARALLEL, workers=4, morsel_size=MORSEL_SIZE
        )
        policy = ReoptimizationPolicy(threshold=1.01, min_query_seconds=0.0)
        with repro.connect(db, policy=policy, adaptive=True) as conn:
            assert Counter(conn.execute(QUERIES[7]).fetchall()) == expected


class TestFusedFilterKernels:
    def _scan_filters(self, db: Database, sql: str):
        planned = db.plan(sql)
        scan = next(
            node
            for node in planned.plan.walk()
            if isinstance(node, ScanNode) and node.filters
        )
        table = db.catalog.table(scan.table)
        data = table.column_data()
        batch = ColumnBatch(
            [(scan.alias, name) for name in table.schema.column_names],
            data,
            length=table.row_count,
        )
        return list(scan.filters), batch, data

    def test_kernel_compiles_and_matches_serial_selection(self):
        db = build_db()
        sql = QUERIES[1]
        filters, batch, data = self._scan_filters(db, sql)
        kernel = compile_fused_filter(filters, batch.resolver)
        assert kernel is not None
        assert "def _fused" in kernel._fused_source
        # One fused pass over the whole table == the serial scan's selection.
        serial = db.executor_for(ExecutionEngine.VECTORIZED)
        planned = db.plan(sql)
        expected = serial.execute(planned.plan).result.rows
        kept = kernel(data, 0, len(batch))
        got = [(data[0][i],) for i in kept]
        assert got == list(expected), sql

    def test_kernel_is_cached_per_filter_shape(self):
        db = build_db()
        filters, batch, _ = self._scan_filters(db, QUERIES[0])
        first = compile_fused_filter(filters, batch.resolver)
        second = compile_fused_filter(filters, batch.resolver)
        assert first is second

    def test_case_expression_falls_back_to_generic_scan(self):
        db = build_db()
        filters, batch, _ = self._scan_filters(db, QUERIES[4])
        assert compile_fused_filter(filters, batch.resolver) is None
        # ...and the engine still answers the query correctly through the
        # vectorized fallback (covered again by the full-query sweep above).
        planned = db.plan(QUERIES[4])
        serial = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
        parallel = db.executor_for(
            ExecutionEngine.PARALLEL, workers=2, morsel_size=MORSEL_SIZE
        ).execute(planned.plan)
        assert list(parallel.result.rows) == list(serial.result.rows)

    def test_division_by_zero_and_null_semantics_in_kernel(self):
        db = build_db()
        sql = "SELECT t.id FROM t WHERE t.v / 0 IS NULL AND t.v % 0 IS NULL"
        planned = db.plan(sql)
        serial = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
        parallel = db.executor_for(
            ExecutionEngine.PARALLEL, workers=8, morsel_size=3
        ).execute(planned.plan)
        assert list(parallel.result.rows) == list(serial.result.rows)
        assert len(parallel.result.rows) == 120  # NULL for every row, incl. NULL v


class TestParallelMetrics:
    def test_scan_and_join_metrics_record_morsels_and_workers(self):
        db = build_db(ExecutionEngine.PARALLEL, workers=4, morsel_size=MORSEL_SIZE)
        execution = db.run(QUERIES[5]).execution
        planned_nodes = {
            metrics.label: metrics for metrics in execution.node_metrics.values()
        }
        scans = [m for m in execution.node_metrics.values() if m.morsels is not None]
        assert scans, planned_nodes
        split = [m for m in scans if m.morsels > 1]
        assert split, "expected at least one operator to split into morsels"
        for metrics in split:
            assert 1 <= metrics.workers <= 4

    def test_explain_analyze_renders_morsel_accounting(self):
        db = build_db(ExecutionEngine.PARALLEL, workers=4, morsel_size=MORSEL_SIZE)
        planned = db.plan(QUERIES[5])
        execution = db.execute_plan(planned)
        text = explain_plan(planned.plan, execution)
        assert "morsels=" in text
        assert "workers=" in text

    def test_serial_engines_leave_parallel_metrics_unset(self):
        db = build_db()
        execution = db.run(QUERIES[5]).execution
        for metrics in execution.node_metrics.values():
            assert metrics.morsels is None
            assert metrics.workers is None


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
