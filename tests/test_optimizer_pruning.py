"""Zone-map and routing partition pruning, and its EXPLAIN surface."""

from __future__ import annotations

from repro.catalog.schema import ColumnType, PartitionSpec, make_schema
from repro.engine import Database
from repro.engine.settings import EngineSettings
from repro.executor.executor import ExecutionEngine
from repro.optimizer.pruning import prune_partitions
from repro.sql.parser import parse_expression
from repro.storage.partition import PartitionedTable


def make_range_table() -> PartitionedTable:
    """id-range shards [..9], [10..19], [20..]; `score` NULL-heavy on purpose."""
    table = PartitionedTable(
        make_schema(
            "t",
            [("id", ColumnType.INT), ("score", ColumnType.INT), ("tag", ColumnType.TEXT)],
            partition_by=PartitionSpec(method="range", column="id", bounds=(10, 20)),
        )
    )
    table.insert_rows(
        [
            # partition 0: scores all NULL, tags present
            (1, None, "a"),
            (5, None, "b"),
            # partition 1: a single-value id shard is built separately below
            (15, 3, None),
            (15, 7, None),
            # partition 2 stays empty
        ]
    )
    return table


def pruned_for(table, sql_predicate: str):
    pruned, total = prune_partitions(table, [parse_expression(sql_predicate)])
    return set(pruned), total


def test_no_filters_prunes_nothing():
    table = make_range_table()
    assert prune_partitions(table, []) == ((), 3)


def test_range_pruning_and_flipped_comparisons():
    table = make_range_table()
    assert pruned_for(table, "t.id > 10") == ({0, 2}, 3)
    # Literal-left orientation must flip the operator, not reuse it.
    assert pruned_for(table, "10 > t.id") == ({1, 2}, 3)
    assert pruned_for(table, "t.id = 15") == ({0, 2}, 3)
    assert pruned_for(table, "t.id BETWEEN 2 AND 9") == ({1, 2}, 3)
    assert pruned_for(table, "t.id IN (4, 99)") == ({1, 2}, 3)


def test_not_predicates_prune_through_nnf_rewrite():
    table = make_range_table()
    # NOT (id >= 10) == id < 10: keeps only partition 0.
    assert pruned_for(table, "NOT (t.id >= 10)") == ({1, 2}, 3)
    # NOT BETWEEN over partition 1's exact id range refutes that shard.
    assert pruned_for(table, "t.id NOT BETWEEN 15 AND 15") == ({1, 2}, 3)
    # De Morgan over an OR tree: both branches must fail per shard.
    assert pruned_for(table, "NOT (t.id < 10 OR t.id = 15)") == ({0, 1, 2}, 3)


def test_empty_partitions_are_pruned_under_any_filter():
    table = make_range_table()
    pruned, _ = pruned_for(table, "t.tag LIKE '%'")
    assert 2 in pruned


def test_all_null_partitions_refute_strict_predicates():
    table = make_range_table()
    # Partition 0's scores are all NULL: any comparison on score is UNKNOWN
    # there, as is arithmetic over score.
    assert 0 in pruned_for(table, "t.score > 0")[0]
    assert 0 in pruned_for(table, "t.score * 2 + 1 = 7")[0]
    assert 0 in pruned_for(table, "t.score IS NOT NULL")[0]
    assert 0 in pruned_for(table, "t.score IN (1, 2)")[0]
    assert 0 in pruned_for(table, "t.score BETWEEN 1 AND 9")[0]
    assert 0 in pruned_for(table, "t.score NOT LIKE 'x%'")[0]
    # ... but NULL-seeking predicates keep it.
    assert 0 not in pruned_for(table, "t.score IS NULL")[0]
    # Partition 1's tags are all NULL symmetrically.
    assert 1 in pruned_for(table, "t.tag = 'a'")[0]
    assert 1 not in pruned_for(table, "t.tag IS NULL")[0]


def test_single_value_shards_prune_inequality_and_not_in():
    table = make_range_table()
    # Partition 1 holds only id=15.
    assert 1 in pruned_for(table, "t.id <> 15")[0]
    assert 1 in pruned_for(table, "t.id NOT IN (15, 99)")[0]
    assert 1 not in pruned_for(table, "t.id NOT IN (14)")[0]
    # NOT IN with a NULL item is never TRUE anywhere.
    assert pruned_for(table, "t.id NOT IN (1, NULL)") == ({0, 1, 2}, 3)


def test_null_comparands_prune_everything():
    table = make_range_table()
    assert pruned_for(table, "t.id = NULL") == ({0, 1, 2}, 3)
    assert pruned_for(table, "t.id BETWEEN NULL AND 5") == ({0, 1, 2}, 3)


def test_flipped_between_bounds_prune_everything():
    table = make_range_table()
    assert pruned_for(table, "t.id BETWEEN 9 AND 2") == ({0, 1, 2}, 3)
    # NOT BETWEEN with flipped bounds keeps every non-NULL row instead.
    assert pruned_for(table, "t.id NOT BETWEEN 9 AND 2")[0] == {2}


def test_conjuncts_combine_and_unknown_shapes_stay_conservative():
    table = make_range_table()
    pruned, _ = prune_partitions(
        table,
        [parse_expression("t.id < 10"), parse_expression("t.tag = 'a'")],
    )
    assert set(pruned) == {1, 2}
    # An opaque predicate shape cannot prune populated shards on its own.
    pruned, _ = prune_partitions(table, [parse_expression("t.id % 2 = 1")])
    assert set(pruned) == {2}  # only the empty shard


def test_hash_partitions_prune_by_key_routing():
    table = PartitionedTable(
        make_schema(
            "r",
            [("id", ColumnType.INT), ("gid", ColumnType.INT)],
            partition_by=PartitionSpec(method="hash", column="gid", partitions=4),
        )
    )
    table.insert_rows([(i, i % 9) for i in range(40)])
    # Zone maps cannot refute hash shards (every shard spans the key range);
    # equality routing can.
    pruned, total = prune_partitions(table, [parse_expression("r.gid = 3")])
    assert total == 4
    assert set(pruned) == {0, 1, 2, 3} - {table.route(3)}
    pruned, _ = prune_partitions(table, [parse_expression("r.gid IN (3, 5)")])
    assert set(pruned) == {0, 1, 2, 3} - {table.route(3), table.route(5)}
    # Negated forms must NOT route.
    pruned, _ = prune_partitions(table, [parse_expression("NOT (r.gid = 3)")])
    assert set(pruned) == set()


# -- planner/executor surface -------------------------------------------------


def build_partitioned_db() -> Database:
    db = Database()
    db.create_table(
        "CREATE TABLE events (id INT, kind TEXT) "
        "PARTITION BY RANGE (id) VALUES (100, 200, 300)"
    )
    db.load_rows("events", [(i, f"k{i % 5}") for i in range(400)])
    db.finalize_load()
    return db


def test_explain_renders_partitions_scanned():
    db = build_partitioned_db()
    plan_text = db.explain(
        "SELECT count(e.id) AS n FROM events AS e WHERE e.id < 100"
    )
    assert "Partitions: 1/4 scanned" in plan_text
    # Unfiltered scans read everything and stay silent about pruning.
    assert "Partitions: 4/4 scanned" in db.explain(
        "SELECT count(e.id) AS n FROM events AS e"
    )


def test_explain_analyze_reports_prune_metrics():
    db = build_partitioned_db()
    text = db.explain(
        "SELECT count(e.id) AS n FROM events AS e WHERE e.id BETWEEN 150 AND 160",
        analyze=True,
    )
    assert "partitions_scanned=1" in text
    assert "partitions_pruned=3" in text


def test_cardinality_estimate_respects_zone_map_upper_bound():
    db = build_partitioned_db()
    planned = db.plan("SELECT count(e.id) AS n FROM events AS e WHERE e.id < 100")
    scan = [n for n in planned.plan.walk() if n.label().startswith("Seq Scan")][0]
    storage = db.catalog.table("events")
    assert scan.estimated_rows <= storage.scanned_rows(scan.pruned_partitions)


def test_pruned_scans_agree_across_engines_and_match_plain_storage():
    db = build_partitioned_db()
    plain = Database()
    plain.create_table(make_schema("events", [("id", ColumnType.INT), ("kind", ColumnType.TEXT)]))
    plain.load_rows("events", [(i, f"k{i % 5}") for i in range(400)])
    plain.finalize_load()
    sql = (
        "SELECT e.kind AS k, count(*) AS n FROM events AS e "
        "WHERE e.id BETWEEN 120 AND 260 GROUP BY e.kind ORDER BY k"
    )
    expected = plain.run(sql).rows
    planned = db.plan(sql)
    for engine in (
        ExecutionEngine.VECTORIZED,
        ExecutionEngine.REFERENCE,
        ExecutionEngine.PARALLEL,
    ):
        execution = db.executor_for(engine).execute(planned.plan)
        assert execution.result.rows == expected, engine


def test_stale_plan_reprunes_at_execution_time():
    """Cached plans must not lose rows loaded after planning.

    Table loads do not bump the catalog epoch, so a plan's recorded pruning
    can go stale; the executor re-derives it at execution time.
    """
    db = Database(EngineSettings(auto_foreign_key_indexes=False))
    db.create_table(
        "CREATE TABLE events (id INT, kind TEXT) "
        "PARTITION BY RANGE (id) VALUES (100, 200, 300)"
    )
    db.load_rows("events", [(i, "x") for i in range(100)])  # partition 0 only
    db.analyze()
    sql = "SELECT count(e.id) AS n FROM events AS e WHERE e.id >= 0"
    planned = db.plan(sql)
    scan = [n for n in planned.plan.walk() if n.label().startswith("Seq Scan")][0]
    # At plan time partitions 1-3 were empty, hence recorded as pruned.
    assert len(scan.pruned_partitions) == 3
    db.load_rows("events", [(i, "y") for i in range(100, 400)])
    execution = db.executor.execute(planned.plan)
    assert execution.result.rows == [(400,)]
