"""Unit tests for the re-optimization interceptor, mid-query variant,
feedback loop and connection accounting."""

import pytest

from repro.core import (
    FeedbackLoop,
    MidQueryReoptimizer,
    ReoptimizationInterceptor,
    ReoptimizationPolicy,
)
from repro.engine import QueryPipeline, connect

SKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
)
UNSKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM99' AND c.id = t.company_id"
)


def expected_count(db, company_id):
    return sum(1 for row in db.catalog.table("trades").iter_rows() if row[1] == company_id)


def reoptimize(db, query, policy, keep_temp_tables=False):
    """Drive the materialize-and-rewrite loop through a one-off pipeline."""
    pipeline = QueryPipeline(
        db,
        [
            ReoptimizationInterceptor(
                policy, keep_temp_tables=keep_temp_tables, adaptive=False
            )
        ],
    )
    return pipeline.run(bound=query).report


class TestReoptimizationPipeline:
    def test_triggers_on_skewed_query(self, stock_db):
        report = reoptimize(
            stock_db,
            stock_db.parse(SKEWED_SQL, name="skewed"),
            ReoptimizationPolicy(threshold=4),
        )
        assert report.reoptimized
        assert report.rows == [(expected_count(stock_db, 1),)]
        assert report.total_execution_work > 0
        assert report.total_planning_work > 0
        step = report.steps[0]
        assert step.q_error > 4
        assert step.temp_rows == expected_count(stock_db, 1)
        assert "CREATE TEMP TABLE" in step.create_sql
        # Temp tables are dropped by default.
        assert step.temp_table not in stock_db.catalog

    def test_does_not_trigger_on_well_estimated_query(self, stock_db):
        report = reoptimize(
            stock_db,
            stock_db.parse(UNSKEWED_SQL, name="plain"),
            ReoptimizationPolicy(threshold=32),
        )
        assert not report.reoptimized
        assert report.rows == [(expected_count(stock_db, 99),)]

    def test_keep_temp_tables(self, stock_db):
        report = reoptimize(
            stock_db,
            stock_db.parse(SKEWED_SQL, name="kept"),
            ReoptimizationPolicy(threshold=4),
            keep_temp_tables=True,
        )
        assert report.reoptimized
        assert report.steps[0].temp_table in stock_db.catalog
        stock_db.drop_table(report.steps[0].temp_table)

    def test_min_query_seconds_skips_short_queries(self, stock_db):
        policy = ReoptimizationPolicy(threshold=4, min_query_seconds=1e9)
        report = reoptimize(
            stock_db, stock_db.parse(SKEWED_SQL, name="short"), policy
        )
        assert not report.reoptimized

    def test_rewritten_sql_script(self, stock_db):
        report = reoptimize(
            stock_db,
            stock_db.parse(SKEWED_SQL, name="script"),
            ReoptimizationPolicy(threshold=4),
        )
        script = report.rewritten_sql()
        assert "CREATE TEMP TABLE" in script
        assert script.strip().endswith(";")

    def test_results_match_plain_execution_on_workload(self, imdb_db, job_queries):
        """Re-optimized queries return exactly the same rows as plain execution."""
        policy = ReoptimizationPolicy(threshold=8)
        for job in job_queries[:6]:
            query = imdb_db.parse(job.sql, name=job.name)
            plain = imdb_db.run(query)
            report = reoptimize(imdb_db, query, policy)
            assert report.rows == plain.rows, job.name


class TestMidQueryReoptimizer:
    def test_cheaper_than_materializing_simulation(self, stock_db):
        policy = ReoptimizationPolicy(threshold=4)
        simulated = reoptimize(
            stock_db, stock_db.parse(SKEWED_SQL, name="mat"), policy
        )
        pipelined = MidQueryReoptimizer(stock_db, policy).reoptimize(
            stock_db.parse(SKEWED_SQL, name="pipe")
        )
        assert pipelined.rows == simulated.rows
        assert pipelined.total_execution_work <= simulated.total_execution_work


class TestFeedbackLoop:
    def test_converges_on_skewed_query(self, stock_db):
        loop = FeedbackLoop(stock_db, threshold=4, max_iterations=10)
        result = loop.run(stock_db.parse(SKEWED_SQL, name="feedback"))
        assert 1 <= result.num_iterations <= 10
        # The last iteration has no remaining violation.
        assert result.iterations[-1].corrected_subset is None or len(result.injection) > 0
        series = result.execution_seconds_series()
        assert all(value >= 0 for value in series)

    def test_no_iterations_needed_for_good_estimates(self, stock_db):
        loop = FeedbackLoop(stock_db, threshold=1e9)
        result = loop.run(stock_db.parse(UNSKEWED_SQL, name="feedback-good"))
        assert result.num_iterations == 1
        assert result.iterations[0].corrected_subset is None


class TestReoptimizingConnection:
    def test_connection_runs_and_records_metrics(self, stock_db):
        conn = connect(
            stock_db, policy=ReoptimizationPolicy(threshold=4), plan_cache_size=0
        )
        first = conn.execute(SKEWED_SQL)
        first_rows = first.fetchall()
        second = conn.execute(UNSKEWED_SQL)
        assert first.context.reoptimized
        assert not second.context.reoptimized
        assert first_rows == [(expected_count(stock_db, 1),)]
        assert conn.metrics.statements == 2
        assert conn.metrics.execution_seconds > 0
        assert conn.metrics.planning_seconds > 0

    def test_connection_without_reoptimization(self, stock_db):
        conn = connect(stock_db, reoptimize=False, plan_cache_size=0)
        rows = conn.execute(UNSKEWED_SQL).fetchall()
        assert rows == [(expected_count(stock_db, 99),)]

    def test_metrics_totals_equal_per_query_sums(self, stock_db):
        """Connection totals must be the exact sum of per-query accounting.

        The mix deliberately includes a re-optimized run (multiple planning
        rounds, temp-table surcharge), a plain run, and a single-table query
        (never re-optimized), so the totals cover both accounting paths.
        """
        conn = connect(
            stock_db, policy=ReoptimizationPolicy(threshold=4), plan_cache_size=0
        )
        statements = [
            SKEWED_SQL,
            UNSKEWED_SQL,
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'",
            SKEWED_SQL,
        ]
        contexts = [conn.execute(sql).context for sql in statements]

        assert conn.metrics.statements == len(statements)
        reoptimized = [ctx for ctx in contexts if ctx.reoptimized]
        plain = [ctx for ctx in contexts if not ctx.reoptimized]
        assert reoptimized and plain  # genuinely mixed

        execution_sum = sum(ctx.execution_seconds for ctx in contexts)
        planning_sum = sum(ctx.planning_seconds for ctx in contexts)
        assert conn.metrics.execution_seconds == pytest.approx(execution_sum)
        assert conn.metrics.planning_seconds == pytest.approx(planning_sum)

        # Each per-query figure is itself the sum of that query's rounds:
        # planning work of every round and execution work of every step
        # plus the final SELECT.
        for ctx in contexts:
            report = ctx.report
            step_work = sum(step.charged_work for step in report.steps)
            final_work = report.final_execution.total_work
            assert report.total_execution_work == pytest.approx(step_work + final_work)
            # A re-optimized query planned more than once, so it must charge
            # strictly more planning than its final round alone.
            final_planning = report.final_planned.stats.planning_work
            if ctx.reoptimized:
                assert report.total_planning_work > final_planning
            else:
                assert report.total_planning_work == pytest.approx(final_planning)
