"""Unit tests for the re-optimization simulator, mid-query variant,
feedback loop and session API."""

import pytest

from repro.core import (
    FeedbackLoop,
    MidQueryReoptimizer,
    ReoptimizationPolicy,
    ReoptimizationSimulator,
    ReoptimizingSession,
)

SKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
)
UNSKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM99' AND c.id = t.company_id"
)


def expected_count(db, company_id):
    return sum(1 for row in db.catalog.table("trades").iter_rows() if row[1] == company_id)


class TestReoptimizationSimulator:
    def test_triggers_on_skewed_query(self, stock_db):
        simulator = ReoptimizationSimulator(stock_db, ReoptimizationPolicy(threshold=4))
        report = simulator.reoptimize(stock_db.parse(SKEWED_SQL, name="skewed"))
        assert report.reoptimized
        assert report.rows == [(expected_count(stock_db, 1),)]
        assert report.total_execution_work > 0
        assert report.total_planning_work > 0
        step = report.steps[0]
        assert step.q_error > 4
        assert step.temp_rows == expected_count(stock_db, 1)
        assert "CREATE TEMP TABLE" in step.create_sql
        # Temp tables are dropped by default.
        assert step.temp_table not in stock_db.catalog

    def test_does_not_trigger_on_well_estimated_query(self, stock_db):
        simulator = ReoptimizationSimulator(stock_db, ReoptimizationPolicy(threshold=32))
        report = simulator.reoptimize(stock_db.parse(UNSKEWED_SQL, name="plain"))
        assert not report.reoptimized
        assert report.rows == [(expected_count(stock_db, 99),)]

    def test_keep_temp_tables(self, stock_db):
        simulator = ReoptimizationSimulator(stock_db, ReoptimizationPolicy(threshold=4))
        report = simulator.reoptimize(
            stock_db.parse(SKEWED_SQL, name="kept"), keep_temp_tables=True
        )
        assert report.reoptimized
        assert report.steps[0].temp_table in stock_db.catalog
        stock_db.drop_table(report.steps[0].temp_table)

    def test_min_query_seconds_skips_short_queries(self, stock_db):
        policy = ReoptimizationPolicy(threshold=4, min_query_seconds=1e9)
        simulator = ReoptimizationSimulator(stock_db, policy)
        report = simulator.reoptimize(stock_db.parse(SKEWED_SQL, name="short"))
        assert not report.reoptimized

    def test_rewritten_sql_script(self, stock_db):
        simulator = ReoptimizationSimulator(stock_db, ReoptimizationPolicy(threshold=4))
        report = simulator.reoptimize(stock_db.parse(SKEWED_SQL, name="script"))
        script = report.rewritten_sql()
        assert "CREATE TEMP TABLE" in script
        assert script.strip().endswith(";")

    def test_results_match_plain_execution_on_workload(self, imdb_db, job_queries):
        """Re-optimized queries return exactly the same rows as plain execution."""
        simulator = ReoptimizationSimulator(imdb_db, ReoptimizationPolicy(threshold=8))
        for job in job_queries[:6]:
            query = imdb_db.parse(job.sql, name=job.name)
            plain = imdb_db.run(query)
            report = simulator.reoptimize(query)
            assert report.rows == plain.rows, job.name


class TestMidQueryReoptimizer:
    def test_cheaper_than_materializing_simulation(self, stock_db):
        policy = ReoptimizationPolicy(threshold=4)
        simulated = ReoptimizationSimulator(stock_db, policy).reoptimize(
            stock_db.parse(SKEWED_SQL, name="mat")
        )
        pipelined = MidQueryReoptimizer(stock_db, policy).reoptimize(
            stock_db.parse(SKEWED_SQL, name="pipe")
        )
        assert pipelined.rows == simulated.rows
        assert pipelined.total_execution_work <= simulated.total_execution_work


class TestFeedbackLoop:
    def test_converges_on_skewed_query(self, stock_db):
        loop = FeedbackLoop(stock_db, threshold=4, max_iterations=10)
        result = loop.run(stock_db.parse(SKEWED_SQL, name="feedback"))
        assert 1 <= result.num_iterations <= 10
        # The last iteration has no remaining violation.
        assert result.iterations[-1].corrected_subset is None or len(result.injection) > 0
        series = result.execution_seconds_series()
        assert all(value >= 0 for value in series)

    def test_no_iterations_needed_for_good_estimates(self, stock_db):
        loop = FeedbackLoop(stock_db, threshold=1e9)
        result = loop.run(stock_db.parse(UNSKEWED_SQL, name="feedback-good"))
        assert result.num_iterations == 1
        assert result.iterations[0].corrected_subset is None


class TestReoptimizingSession:
    def test_session_runs_and_records_history(self, stock_db):
        session = ReoptimizingSession(stock_db, ReoptimizationPolicy(threshold=4))
        first = session.execute(SKEWED_SQL)
        second = session.execute(UNSKEWED_SQL)
        assert first.reoptimized
        assert not second.reoptimized
        assert first.rows == [(expected_count(stock_db, 1),)]
        assert len(session.history) == 2
        assert session.total_execution_seconds() > 0
        assert session.total_planning_seconds() > 0

    def test_session_comparison_helper(self, stock_db):
        session = ReoptimizingSession(stock_db)
        run = session.execute_without_reoptimization(UNSKEWED_SQL)
        assert run.rows == [(expected_count(stock_db, 99),)]

    def test_history_totals_equal_per_query_sums(self, stock_db):
        """Session totals must be the exact sum of per-query accounting.

        The mix deliberately includes a re-optimized run (multiple planning
        rounds, temp-table surcharge), a plain run, and a single-table query
        (never re-optimized), so the totals cover both accounting paths.
        """
        session = ReoptimizingSession(stock_db, ReoptimizationPolicy(threshold=4))
        statements = [
            SKEWED_SQL,
            UNSKEWED_SQL,
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'",
            SKEWED_SQL,
        ]
        for sql in statements:
            session.execute(sql)

        assert len(session.history) == len(statements)
        reoptimized = [r for r in session.history if r.reoptimized]
        plain = [r for r in session.history if not r.reoptimized]
        assert reoptimized and plain  # genuinely mixed

        execution_sum = sum(r.execution_seconds for r in session.history)
        planning_sum = sum(r.planning_seconds for r in session.history)
        assert session.total_execution_seconds() == pytest.approx(execution_sum)
        assert session.total_planning_seconds() == pytest.approx(planning_sum)

        # Each per-query figure is itself the sum of that query's rounds:
        # planning work of every round and execution work of every step
        # plus the final SELECT.
        for result in session.history:
            report = result.report
            step_work = sum(step.charged_work for step in report.steps)
            final_work = report.final_execution.total_work
            assert report.total_execution_work == pytest.approx(step_work + final_work)
            # A re-optimized query planned more than once, so it must charge
            # strictly more planning than its final round alone.
            final_planning = report.final_planned.stats.planning_work
            if result.reoptimized:
                assert report.total_planning_work > final_planning
            else:
                assert report.total_planning_work == pytest.approx(final_planning)
