"""Unit tests for plan enumeration and the optimizer facade."""

import pytest

from repro.errors import PlanningError
from repro.optimizer import (
    DictInjection,
    JoinAlgorithm,
    Optimizer,
    PlannerConfig,
    ScanNode,
)
from repro.optimizer.plan import AccessPath, AggregateNode, JoinNode


class TestOptimizerOnStocks:
    def test_plan_structure(self, stock_db):
        planned = stock_db.plan(
            "SELECT count(t.id) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
        )
        assert isinstance(planned.plan, AggregateNode)
        joins = planned.plan.join_nodes()
        assert len(joins) == 1
        assert planned.stats.estimate_calls > 0
        assert planned.stats.candidates_considered > 0
        assert planned.stats.planning_seconds > 0

    def test_selective_filter_prefers_index_or_filtered_side_first(self, stock_db):
        planned = stock_db.plan(
            "SELECT c.id FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM99' AND c.id = t.company_id"
        )
        join = planned.plan.join_nodes()[0]
        # The filtered company side should be the outer (probe) side.
        assert "c" in join.left.aliases

    def test_injection_changes_plan_choice(self, stock_db):
        sql = (
            "SELECT c.id FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
        )
        query = stock_db.parse(sql, name="q")
        default_plan = stock_db.plan(query)
        injection = DictInjection({frozenset({"c", "t"}): 2000.0})
        corrected_plan = stock_db.plan(query, injector=injection)
        # With the true (large) cardinality injected, the optimizer should not
        # keep an index-nested-loop plan that expects a handful of rows.
        default_join = default_plan.plan.join_nodes()[0]
        corrected_join = corrected_plan.plan.join_nodes()[0]
        assert corrected_join.estimated_rows > default_join.estimated_rows

    def test_single_table_query(self, stock_db):
        planned = stock_db.plan("SELECT c.id FROM company AS c WHERE c.symbol = 'SYM1'")
        assert isinstance(planned.plan.child, ScanNode)

    def test_index_scan_selected_for_pk_equality(self, stock_db):
        planned = stock_db.plan("SELECT c.symbol FROM company AS c WHERE c.id = 5")
        scan = planned.plan.child
        assert isinstance(scan, ScanNode)
        assert scan.access_path is AccessPath.INDEX_SCAN

    def test_cartesian_product_rejected(self, stock_db):
        query = stock_db.parse("SELECT c.id FROM company AS c, trades AS t WHERE c.id = 1")
        with pytest.raises(PlanningError):
            stock_db.plan(query)

    def test_disable_join_algorithms(self, stock_db):
        config = PlannerConfig(
            enable_nested_loop=False,
            enable_index_nested_loop=False,
            enable_merge_join=False,
        )
        optimizer = Optimizer(stock_db.catalog, planner_config=config)
        planned = optimizer.plan(
            stock_db.parse(
                "SELECT c.id FROM company AS c, trades AS t WHERE c.id = t.company_id"
            )
        )
        algorithms = {join.algorithm for join in planned.plan.join_nodes()}
        assert algorithms == {JoinAlgorithm.HASH_JOIN}


class TestOptimizerOnImdb:
    def test_plans_medium_query_with_dp(self, imdb_db, job_queries):
        query_sql = next(q for q in job_queries if q.num_tables == 8)
        planned = imdb_db.plan(imdb_db.parse(query_sql.sql, name=query_sql.name))
        assert len(planned.plan.join_nodes()) == 7
        covered = planned.plan.join_nodes()[-1].aliases
        assert len(covered) == 8

    def test_plans_large_query_with_greedy(self, imdb_db, job_queries):
        query_sql = next(q for q in job_queries if q.num_tables == 17)
        planned = imdb_db.plan(imdb_db.parse(query_sql.sql, name=query_sql.name))
        assert len(planned.plan.join_nodes()) == 16
        assert planned.stats.estimates_by_size[1] == 17

    def test_estimate_counts_by_size_populated(self, imdb_db, job_queries):
        query_sql = next(q for q in job_queries if q.num_tables == 7)
        planned = imdb_db.plan(imdb_db.parse(query_sql.sql, name=query_sql.name))
        sizes = planned.stats.estimates_by_size
        assert sizes[1] == 7
        assert max(sizes) == 7
