"""CREATE TABLE parsing: columns, constraints, partitioning clauses."""

from __future__ import annotations

import pytest

from repro.catalog.schema import ColumnType, ForeignKey
from repro.errors import CatalogError, ParseError
from repro.sql.parser import parse_create_table


def test_parse_columns_types_and_constraints():
    schema = parse_create_table(
        """
        CREATE TABLE trades (
            id INTEGER NOT NULL PRIMARY KEY,
            company_id INT REFERENCES company (id),
            shares int,
            price DOUBLE,
            ratio REAL,
            fee FLOAT,
            note TEXT,
            memo VARCHAR,
            tag STRING
        );
        """
    )
    assert schema.name == "trades"
    assert schema.primary_key == "id"
    assert schema.partition_spec is None
    types = {c.name: c.col_type for c in schema.columns}
    assert types == {
        "id": ColumnType.INT,
        "company_id": ColumnType.INT,
        "shares": ColumnType.INT,
        "price": ColumnType.FLOAT,
        "ratio": ColumnType.FLOAT,
        "fee": ColumnType.FLOAT,
        "note": ColumnType.TEXT,
        "memo": ColumnType.TEXT,
        "tag": ColumnType.TEXT,
    }
    assert not schema.column("id").nullable
    assert schema.column("shares").nullable
    assert schema.foreign_keys == (ForeignKey("company_id", "company", "id"),)


def test_parse_hash_partitioning():
    schema = parse_create_table(
        "CREATE TABLE r (id INT, gid INT) PARTITION BY HASH (gid) PARTITIONS 8"
    )
    spec = schema.partition_spec
    assert spec is not None
    assert (spec.method, spec.column, spec.num_partitions) == ("hash", "gid", 8)


def test_parse_range_partitioning_bounds():
    schema = parse_create_table(
        "CREATE TABLE t (id INT, x FLOAT) "
        "PARTITION BY RANGE (x) VALUES (-1.5, 0, 10)"
    )
    spec = schema.partition_spec
    assert spec is not None
    assert spec.method == "range"
    assert spec.bounds == (-1.5, 0, 10)
    assert spec.num_partitions == 4


def test_parse_range_partitioning_string_bounds():
    schema = parse_create_table(
        "CREATE TABLE t (name TEXT) PARTITION BY RANGE (name) VALUES ('h', 'p')"
    )
    assert schema.partition_spec.bounds == ("h", "p")


@pytest.mark.parametrize(
    "sql",
    [
        "CREATE trades (id INT)",  # missing TABLE
        "CREATE TABLE t (id WIBBLE)",  # unknown type
        "CREATE TABLE t (id INT PRIMARY)",  # PRIMARY without KEY
        "CREATE TABLE t (id INT NOT)",  # NOT without NULL
        "CREATE TABLE t (id INT, gid INT) PARTITION BY MODULO (gid)",
        "CREATE TABLE t (id INT) PARTITION BY HASH (id) PARTITIONS 2.5",
        "CREATE TABLE t (id INT) PARTITION BY RANGE (id) VALUES (id)",
        "CREATE TABLE t (id INT) garbage",
        "CREATE TABLE t (id INT PRIMARY KEY, gid INT PRIMARY KEY)",
    ],
)
def test_parse_errors(sql):
    with pytest.raises(ParseError):
        parse_create_table(sql)


def test_invalid_schema_surfaces_catalog_errors():
    with pytest.raises(CatalogError):
        # Bounds must ascend strictly: caught by PartitionSpec validation.
        parse_create_table(
            "CREATE TABLE t (id INT) PARTITION BY RANGE (id) VALUES (5, 5)"
        )
    with pytest.raises(CatalogError):
        # Partition key must be a declared column.
        parse_create_table(
            "CREATE TABLE t (id INT) PARTITION BY HASH (nope) PARTITIONS 2"
        )
