"""Unit tests for the Database facade."""

import pytest

from repro.catalog import ColumnType, make_schema
from repro.engine import Database, EngineSettings
from repro.errors import CatalogError, StorageError, TempTableExists


class TestDatabaseDDL:
    def test_create_load_analyze(self, stock_db):
        assert stock_db.catalog.table("company").row_count == 150
        assert stock_db.catalog.stats("trades").row_count == 4000
        assert "company_id" in stock_db.catalog.indexes("trades")

    def test_load_dict_rows(self):
        db = Database()
        db.create_table(make_schema("t", [("id", ColumnType.INT), ("x", ColumnType.TEXT)]))
        count = db.load_rows("t", [{"id": 1, "x": "a"}, {"id": 2}])
        assert count == 2
        assert db.catalog.table("t").row(1) == (2, None)

    def test_load_rows_mixes_tuples_and_dicts(self):
        db = Database()
        db.create_table(make_schema("t", [("id", ColumnType.INT), ("x", ColumnType.TEXT)]))
        count = db.load_rows("t", [(1, "a"), {"id": 2, "x": "b"}, (3, None)])
        assert count == 3
        assert list(db.catalog.table("t").iter_rows()) == [(1, "a"), (2, "b"), (3, None)]

    def test_load_rows_empty_iterable(self):
        db = Database()
        db.create_table(make_schema("t", [("id", ColumnType.INT)]))
        assert db.load_rows("t", []) == 0
        assert db.catalog.table("t").row_count == 0

    def test_load_rows_rejects_bad_width_and_unknown_columns(self):
        db = Database()
        db.create_table(make_schema("t", [("id", ColumnType.INT), ("x", ColumnType.TEXT)]))
        with pytest.raises(StorageError):
            db.load_rows("t", [(1,)])
        with pytest.raises(StorageError):
            db.load_rows("t", [{"id": 1, "nope": 2}])

    def test_load_rows_is_atomic_on_bad_value(self):
        # The bulk path loads column-wise in one load_columns call; a NULL in
        # a non-nullable column must roll the whole batch back.
        from repro.catalog import ColumnDef, TableSchema

        db = Database()
        db.create_table(
            TableSchema(
                name="t",
                columns=(
                    ColumnDef("id", ColumnType.INT, nullable=False),
                    ColumnDef("x", ColumnType.TEXT),
                ),
            )
        )
        with pytest.raises(StorageError):
            db.load_rows("t", [(1, "a"), (None, "b")])
        assert db.catalog.table("t").row_count == 0

    def test_drop_table(self, stock_db):
        stock_db.drop_table("trades")
        assert "trades" not in stock_db.catalog
        with pytest.raises(CatalogError):
            stock_db.drop_table("trades")

    def test_settings_disable_auto_indexes(self):
        db = Database(EngineSettings(auto_foreign_key_indexes=False))
        db.create_table(
            make_schema("t", [("id", ColumnType.INT)], primary_key="id")
        )
        db.load_rows("t", [(1,), (2,)])
        db.finalize_load()
        assert db.catalog.indexes("t") == {}

    def test_create_extra_index(self, stock_db):
        stock_db.create_index("trades", "venue")
        assert "venue" in stock_db.catalog.indexes("trades")


class TestDatabaseQuerying:
    def test_run_sql_end_to_end(self, stock_db):
        run = stock_db.run(
            "SELECT count(t.id) AS n FROM trades AS t WHERE t.venue = 'NASDAQ'"
        )
        expected = sum(
            1 for row in stock_db.catalog.table("trades").iter_rows() if row[3] == "NASDAQ"
        )
        assert run.rows == [(expected,)]
        assert run.total_seconds == run.planning_seconds + run.execution_seconds

    def test_explain_without_analyze(self, stock_db):
        text = stock_db.explain("SELECT c.id FROM company AS c WHERE c.id = 3")
        assert "est_rows" in text
        assert "actual_rows" not in text

    def test_temp_table_from_result(self, stock_db):
        run = stock_db.run(
            "SELECT c.id, c.symbol FROM company AS c WHERE c.sector = 'tech'"
        )
        planned = stock_db.plan(
            "SELECT c.id, c.symbol FROM company AS c WHERE c.sector = 'tech'"
        )
        # Materialize the scan below the final projection, the way the
        # re-optimizer materializes a sub-plan (qualified columns preserved).
        # The plan must reference every materialized column: projection
        # pushdown narrows scans to the referenced set.
        execution = stock_db.executor.execute(planned.plan.child)
        name = stock_db.next_temp_table_name()
        table = stock_db.create_temp_table_from_result(
            name,
            execution.result,
            [(("c", "id"), "c_id"), (("c", "symbol"), "c_symbol")],
            alias_tables={"c": "company"},
        )
        assert table.row_count == len(run.rows)
        assert stock_db.catalog.stats(name) is not None
        assert stock_db.catalog.schema(name).column("c_id").col_type is ColumnType.INT
        # The temp table is queryable through the normal path.
        temp_run = stock_db.run(f"SELECT count(x.c_id) AS n FROM {name} AS x")
        assert temp_run.rows == [(table.row_count,)]

    def test_temp_table_duplicate_name_rejected(self, stock_db):
        planned = stock_db.plan("SELECT c.id FROM company AS c WHERE c.id = 1")
        execution = stock_db.executor.execute(planned.plan.child)
        columns = [(("c", "id"), "c_id")]
        stock_db.create_temp_table_from_result("dup", execution.result, columns)
        # The collision raises the dedicated subclass, which still satisfies
        # callers catching the broader CatalogError.
        with pytest.raises(TempTableExists):
            stock_db.create_temp_table_from_result("dup", execution.result, columns)
        assert issubclass(TempTableExists, CatalogError)

    def test_temp_table_collision_leaves_original_intact(self, stock_db):
        planned = stock_db.plan("SELECT c.id FROM company AS c WHERE c.id = 1")
        execution = stock_db.executor.execute(planned.plan.child)
        columns = [(("c", "id"), "c_id")]
        table = stock_db.create_temp_table_from_result("dup2", execution.result, columns)
        rows_before = table.row_count
        with pytest.raises(TempTableExists):
            stock_db.create_temp_table_from_result("dup2", execution.result, columns)
        assert stock_db.catalog.table("dup2") is table
        assert table.row_count == rows_before

    def test_temp_table_names_unique(self, stock_db):
        assert stock_db.next_temp_table_name() != stock_db.next_temp_table_name()
