"""Unit tests for Q-error triggers and the true-cardinality oracle."""

import pytest

from repro.core import (
    ReoptimizationPolicy,
    TrueCardinalityOracle,
    find_trigger_join,
    q_error,
    violating_joins,
)
from repro.errors import CardinalityError


class TestQError:
    def test_symmetry(self):
        assert q_error(10, 1000) == q_error(1000, 10) == 100.0

    def test_exact(self):
        assert q_error(50, 50) == 1.0

    def test_clamped_at_one_row(self):
        assert q_error(0, 10) == 10.0
        assert q_error(10, 0) == 10.0
        assert q_error(0, 0) == 1.0


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReoptimizationPolicy(threshold=0.5)
        with pytest.raises(ValueError):
            ReoptimizationPolicy(trigger_site="middle")
        with pytest.raises(ValueError):
            ReoptimizationPolicy(max_iterations=0)

    def test_defaults(self):
        policy = ReoptimizationPolicy()
        assert policy.threshold == 32.0
        assert policy.trigger_site == "lowest"


class TestTriggerSelection:
    SQL = (
        "SELECT count(t.id) AS n FROM company AS c, trades AS t "
        "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
    )

    def test_violating_join_found_under_skew(self, stock_db):
        planned = stock_db.plan(self.SQL)
        stock_db.execute_plan(planned)
        violations = violating_joins(planned.plan, threshold=4)
        assert len(violations) == 1
        trigger = find_trigger_join(planned.plan, ReoptimizationPolicy(threshold=4))
        assert trigger is violations[0]

    def test_no_violation_above_huge_threshold(self, stock_db):
        planned = stock_db.plan(self.SQL)
        stock_db.execute_plan(planned)
        assert find_trigger_join(planned.plan, ReoptimizationPolicy(threshold=1e9)) is None

    def test_unexecuted_plan_has_no_violations(self, stock_db):
        planned = stock_db.plan(self.SQL)
        assert violating_joins(planned.plan, threshold=2) == []


class TestOracle:
    SQL = (
        "SELECT count(t.id) AS n FROM company AS c, trades AS t "
        "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
    )

    def test_true_cardinality_matches_execution(self, stock_db):
        oracle = TrueCardinalityOracle(stock_db)
        query = stock_db.parse(self.SQL, name="oracle-test")
        expected = sum(
            1 for row in stock_db.catalog.table("trades").iter_rows() if row[1] == 1
        )
        assert oracle.true_cardinality(query, {"c", "t"}) == expected
        assert oracle.true_cardinality(query, {"c"}) == 1

    def test_memoization(self, stock_db):
        oracle = TrueCardinalityOracle(stock_db)
        query = stock_db.parse(self.SQL, name="oracle-memo")
        oracle.true_cardinality(query, {"c", "t"})
        computed = oracle.subsets_computed
        oracle.true_cardinality(query, {"c", "t"})
        assert oracle.subsets_computed == computed

    def test_release_keeps_cardinalities(self, stock_db):
        oracle = TrueCardinalityOracle(stock_db)
        query = stock_db.parse(self.SQL, name="oracle-release")
        value = oracle.true_cardinality(query, {"c", "t"})
        oracle.release_intermediates(query)
        assert oracle.true_cardinality(query, {"c", "t"}) == value

    def test_clear(self, stock_db):
        oracle = TrueCardinalityOracle(stock_db)
        query = stock_db.parse(self.SQL, name="oracle-clear")
        oracle.true_cardinality(query, {"c", "t"})
        oracle.clear(query)
        assert oracle.subsets_computed >= 1

    def test_unknown_alias_rejected(self, stock_db):
        oracle = TrueCardinalityOracle(stock_db)
        query = stock_db.parse(self.SQL, name="oracle-bad")
        with pytest.raises(CardinalityError):
            oracle.true_cardinality(query, {"zz"})
        with pytest.raises(CardinalityError):
            oracle.true_cardinality(query, set())

    def test_perfect_injection_wrapper(self, stock_db):
        oracle = TrueCardinalityOracle(stock_db)
        query = stock_db.parse(self.SQL, name="oracle-inject")
        injector = oracle.perfect_injection(1)
        assert injector.lookup(query, frozenset({"c"})) == 1.0
        assert injector.lookup(query, frozenset({"c", "t"})) is None

    def test_oracle_on_imdb_query_consistent_with_executor(self, imdb_db, job_queries):
        """Oracle counts match actually executing the full query's join."""
        job = next(q for q in job_queries if q.num_tables == 4)
        query = imdb_db.parse(job.sql, name=job.name)
        planned = imdb_db.plan(query)
        execution = imdb_db.execute_plan(planned)
        top_join = planned.plan.join_nodes()[-1]
        oracle = TrueCardinalityOracle(imdb_db)
        assert (
            oracle.true_cardinality(query, set(query.aliases)) == top_join.actual_rows
        )
        assert execution.row_count == 1  # aggregate output
