"""Copy-on-write snapshots: pinned reads, read-only writes, epoch isolation."""

from __future__ import annotations

import pytest

from repro.catalog.schema import ColumnType, make_schema
from repro.engine import Database
from repro.errors import StorageError
from repro.storage.partition import PartitionedTable
from repro.storage.snapshot import (
    PartitionedTableSnapshot,
    TableSnapshot,
    take_snapshot,
)
from repro.storage.table import Table
from repro.workloads.stocks import StocksConfig, build_stocks_database

SMALL_STOCKS = StocksConfig(num_companies=50, num_trades=500)

JOIN_SQL = (
    "SELECT c.symbol AS s, count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id GROUP BY c.symbol ORDER BY n DESC, s LIMIT 5"
)


def _plain_db(rows=100):
    db = Database()
    db.create_table(make_schema("t", [("id", ColumnType.INT), ("v", ColumnType.INT)]))
    db.load_rows("t", [(i, i * 3) for i in range(rows)])
    db.finalize_load()
    return db


def _partitioned_db(rows=120):
    db = Database()
    db.create_table(
        "CREATE TABLE p (id INT, gid INT) PARTITION BY HASH (gid) PARTITIONS 4"
    )
    db.load_rows("p", [(i, i % 7) for i in range(rows)])
    db.finalize_load()
    return db


class TestStorageSnapshots:
    def test_table_snapshot_pins_row_count(self):
        db = _plain_db(rows=100)
        table = db.catalog.table("t")
        snap = take_snapshot(table)
        assert isinstance(snap, TableSnapshot)
        assert snap.row_count == 100

        db.load_rows("t", [(i, i) for i in range(100, 150)])
        assert table.row_count == 150
        # The snapshot still reads exactly the pinned prefix.
        assert snap.row_count == 100
        assert all(len(column) == 100 for column in snap.column_data())
        assert list(snap.iter_row_ids()) == list(range(100))
        assert snap.row(99) == (99, 297)

    def test_partitioned_snapshot_pins_every_shard(self):
        db = _partitioned_db(rows=120)
        table = db.catalog.table("p")
        snap = take_snapshot(table)
        assert isinstance(snap, PartitionedTableSnapshot)
        # The executor dispatches pruning on this isinstance check.
        assert isinstance(snap, PartitionedTable)
        assert snap.row_count == 120

        db.load_rows("p", [(i, i % 7) for i in range(120, 200)])
        assert table.row_count == 200
        assert snap.row_count == 120
        assert sum(len(part.column_data()[0]) for part in snap.partitions()) == 120

    def test_snapshots_reject_all_mutations(self):
        plain = take_snapshot(_plain_db().catalog.table("t"))
        with pytest.raises(StorageError):
            plain.insert_row((1, 2))
        with pytest.raises(StorageError):
            plain.insert_rows([(1, 2)])
        with pytest.raises(StorageError):
            plain.load_columns([[1], [2]])

        parted = take_snapshot(_partitioned_db().catalog.table("p"))
        with pytest.raises(StorageError):
            parted.insert_row((1, 2))
        with pytest.raises(StorageError):
            parted.load_columns([[1], [2]])
        with pytest.raises(StorageError):
            parted.compress()
        with pytest.raises(StorageError):
            parted.refresh_zone_maps()
        for shard in parted.partitions():
            with pytest.raises(StorageError):
                shard.append_row((1, 2))

    def test_partition_snapshot_zone_maps_detached_from_writer(self):
        db = _partitioned_db(rows=120)
        table = db.catalog.table("p")
        snap = take_snapshot(table)
        before = [
            shard.zone_map.columns["id"].maximum for shard in snap.partitions()
        ]
        # Writer appends mutate the live zone maps in place.
        db.load_rows("p", [(10_000 + i, i % 7) for i in range(20)])
        after = [
            shard.zone_map.columns["id"].maximum for shard in snap.partitions()
        ]
        assert after == before
        assert max(
            shard.zone_map.columns["id"].maximum for shard in table.partitions()
        ) >= 10_000


class TestDatabaseSnapshots:
    def test_snapshot_queries_ignore_concurrent_loads(self):
        db = _plain_db(rows=100)
        count_sql = "SELECT count(t.id) AS n FROM t AS t"
        snap = db.snapshot()
        db.load_rows("t", [(i, i) for i in range(100, 160)])
        assert snap.run(count_sql).rows == [(100,)]
        assert db.run(count_sql).rows == [(160,)]
        # A snapshot pinned after the load sees it.
        assert db.snapshot().run(count_sql).rows == [(160,)]

    def test_snapshot_of_snapshot_repins_from_base(self):
        db = _plain_db(rows=100)
        snap = db.snapshot()
        db.load_rows("t", [(i, i) for i in range(100, 110)])
        repinned = snap.snapshot()
        count_sql = "SELECT count(t.id) AS n FROM t AS t"
        assert snap.run(count_sql).rows == [(100,)]
        assert repinned.run(count_sql).rows == [(110,)]

    def test_catalog_snapshot_cache_reuses_table_views(self):
        db = _plain_db(rows=100)
        first = db.catalog.snapshot()
        second = db.catalog.snapshot()
        # No intervening write: the storage snapshot is shared, the entry is
        # not (each session mutates only its own catalog view).
        assert first.table("t") is second.table("t")
        assert first.entry("t") is not second.entry("t")

        db.load_rows("t", [(100, 100)])
        third = db.catalog.snapshot()
        assert third.table("t") is not first.table("t")
        assert third.table("t").row_count == 101

    def test_snapshot_excludes_transient_tables(self):
        db = _plain_db()
        schema = make_schema("__mid", [("x", ColumnType.INT)])
        scratch = Table(schema)
        db.catalog.register_transient(schema, scratch)
        snap = db.snapshot()
        assert "__mid" not in snap.catalog
        assert "t" in snap.catalog
        db.catalog.drop_transient("__mid")

    def test_local_catalog_changes_stay_local(self):
        db = _plain_db()
        base_epoch = db.catalog.epoch
        snap = db.snapshot()
        assert snap.catalog.epoch == base_epoch

        snap.create_table(
            make_schema("scratch", [("x", ColumnType.INT)])
        )
        snap.catalog.bump_epoch()
        assert "scratch" in snap.catalog
        assert "scratch" not in db.catalog
        assert db.catalog.epoch == base_epoch
        assert snap.catalog.epoch > base_epoch

    def test_snapshot_stats_follow_pin_not_later_analyze(self):
        db = _plain_db(rows=100)
        snap = db.snapshot()
        pinned_stats = snap.catalog.stats("t")
        assert pinned_stats is not None
        db.load_rows("t", [(i, i) for i in range(100, 200)])
        db.analyze(["t"])
        assert snap.catalog.stats("t") is pinned_stats
        assert db.catalog.stats("t").row_count == 200

    def test_adaptive_reoptimization_runs_on_a_snapshot(self):
        from repro.core.interceptor import ReoptimizationInterceptor
        from repro.core.triggers import ReoptimizationPolicy
        from repro.engine.pipeline import QueryPipeline

        db = build_stocks_database(SMALL_STOCKS)
        expected = db.run(JOIN_SQL).rows
        tables_before = set(db.catalog.table_names())
        epoch_before = db.catalog.epoch

        snap = db.snapshot()
        pipeline = QueryPipeline(
            snap,
            [ReoptimizationInterceptor(ReoptimizationPolicy(), adaptive=True)],
        )
        ctx = pipeline.run(sql=JOIN_SQL)
        assert ctx.rows == expected
        # Statement-local temp tables and epoch bumps never leak to the base.
        assert set(db.catalog.table_names()) == tables_before
        assert db.catalog.epoch == epoch_before
