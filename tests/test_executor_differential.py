"""Differential testing: vectorized engine vs the row-at-a-time oracle.

Every bundled workload query (the JOB-style synthetic workload and the
Nasdaq stocks example) is planned once and executed through both engines.
The engines must agree on

* the result multiset (compared as sorted row lists), and
* the charged work — work accounting is engine-invariant by design, so any
  divergence means an operator computed a different cardinality.

Per-node actual row counts are also compared so a compensating error in two
operators cannot cancel out in the totals.
"""

from __future__ import annotations

import pytest

from repro.executor import ExecutionEngine
from repro.workloads.stocks import StocksConfig, build_stocks_database, example_query


def _sort_key(row):
    # NULLs sort first within a column; (is-null, value) pairs keep mixed
    # None/value columns comparable.
    return tuple((value is None, value) for value in row)


def _run_both_engines(database, planned):
    vectorized = database.executor.execute(planned.plan)
    reference = database.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan)
    assert vectorized.engine is ExecutionEngine.VECTORIZED
    assert reference.engine is ExecutionEngine.REFERENCE
    return vectorized, reference


def _assert_identical(vectorized, reference, label):
    assert sorted(vectorized.result.rows, key=_sort_key) == sorted(
        reference.result.rows, key=_sort_key
    ), f"{label}: result sets differ between engines"
    assert vectorized.total_work == reference.total_work, (
        f"{label}: charged work differs "
        f"({vectorized.total_work} vs {reference.total_work})"
    )
    assert vectorized.rows_processed == reference.rows_processed, (
        f"{label}: per-plan row counts differ"
    )
    for node_id, metric in vectorized.node_metrics.items():
        other = reference.node_metrics[node_id]
        assert metric.actual_rows == other.actual_rows, (
            f"{label}: node {metric.label} produced {metric.actual_rows} rows "
            f"vectorized vs {other.actual_rows} reference"
        )
        assert metric.work == other.work, (
            f"{label}: node {metric.label} charged {metric.work} work "
            f"vectorized vs {other.work} reference"
        )


class TestJobWorkloadDifferential:
    def test_every_workload_query_agrees(self, bench_context):
        database = bench_context.database
        assert bench_context.query_names(), "workload context has no queries"
        for name in bench_context.query_names():
            planned = database.plan(bench_context.query(name))
            vectorized, reference = _run_both_engines(database, planned)
            _assert_identical(vectorized, reference, name)


class TestStocksWorkloadDifferential:
    @pytest.fixture(scope="class")
    def stocks_db(self):
        return build_stocks_database(StocksConfig(num_companies=800, num_trades=8000))

    STOCKS_QUERIES = [
        example_query("APPL"),
        example_query("GOOG"),
        # Unfiltered join with plain projection (non-aggregate output).
        "SELECT company.symbol, trades.shares FROM company, trades "
        "WHERE company.id = trades.company_id AND trades.shares > 9000;",
        # Range + LIKE filters with MIN/MAX aggregates.
        "SELECT min(trades.shares) AS lo, max(trades.shares) AS hi "
        "FROM company, trades WHERE company.symbol LIKE 'S00%' "
        "AND company.id = trades.company_id "
        "AND trades.shares BETWEEN 100 AND 500;",
    ]

    @pytest.mark.parametrize("sql", STOCKS_QUERIES)
    def test_stocks_queries_agree(self, stocks_db, sql):
        planned = stocks_db.plan(sql)
        vectorized, reference = _run_both_engines(stocks_db, planned)
        _assert_identical(vectorized, reference, sql.splitlines()[0])


class TestDifferentialAcrossAlgorithms:
    """Forcing each join algorithm must not break engine agreement."""

    def test_algorithms_agree_between_engines(self, stock_db):
        from repro.optimizer.plan import JoinAlgorithm

        sql = (
            "SELECT c.symbol, t.id FROM company AS c, trades AS t "
            "WHERE c.sector = 'tech' AND c.id = t.company_id"
        )
        planned = stock_db.plan(sql)
        joins = planned.plan.join_nodes()
        assert joins
        for algorithm in (
            JoinAlgorithm.HASH_JOIN,
            JoinAlgorithm.NESTED_LOOP,
            JoinAlgorithm.MERGE_JOIN,
        ):
            for join in joins:
                join.algorithm = algorithm
            vectorized, reference = _run_both_engines(stock_db, planned)
            _assert_identical(vectorized, reference, f"{algorithm.value}")
