"""Unit tests for most-common-value lists."""

from repro.stats import MostCommonValues


class TestBuild:
    def test_empty(self):
        assert MostCommonValues.build([]) is None
        assert MostCommonValues.build([None, None]) is None

    def test_frequencies_sum(self):
        values = ["a"] * 50 + ["b"] * 30 + ["c"] * 20
        mcv = MostCommonValues.build(values)
        assert mcv.values[0] == "a"
        assert abs(mcv.total_frequency - 1.0) < 1e-9
        assert abs(mcv.frequency_of("a") - 0.5) < 1e-9
        assert mcv.frequency_of("zzz") is None

    def test_max_entries_respected(self):
        values = list(range(500)) * 2
        mcv = MostCommonValues.build(values, max_entries=10)
        assert len(mcv) <= 10

    def test_only_truly_common_values_kept_for_wide_domains(self):
        # One heavy hitter in an otherwise uniform wide domain.
        values = ["hot"] * 200 + [f"v{i}" for i in range(400)]
        mcv = MostCommonValues.build(values, max_entries=50)
        assert "hot" in mcv.values
        assert abs(mcv.frequency_of("hot") - 200 / 600) < 1e-9

    def test_small_domain_fully_covered(self):
        values = ["m"] * 60 + ["f"] * 40
        mcv = MostCommonValues.build(values)
        assert set(mcv.values) == {"m", "f"}
        assert abs(mcv.total_frequency - 1.0) < 1e-9
