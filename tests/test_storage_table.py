"""Unit tests for columnar tables and columns."""

import pytest

from repro.catalog import ColumnDef, ColumnType, make_schema
from repro.errors import StorageError
from repro.storage import Column, Table


def _table():
    schema = make_schema(
        "people",
        [("id", ColumnType.INT), ("name", ColumnType.TEXT), ("age", ColumnType.INT)],
        primary_key="id",
    )
    return Table(schema)


class TestColumn:
    def test_append_and_coerce(self):
        column = Column(ColumnDef("age", ColumnType.INT))
        column.extend([1, "2", None])
        assert column.values() == [1, 2, None]
        assert column.null_count() == 1
        assert column.distinct_count() == 2
        assert column.min_max() == (1, 2)

    def test_non_nullable_rejects_none(self):
        column = Column(ColumnDef("id", ColumnType.INT, nullable=False))
        with pytest.raises(StorageError):
            column.append(None)

    def test_min_max_empty(self):
        column = Column(ColumnDef("x", ColumnType.INT))
        assert column.min_max() is None


class TestTable:
    def test_insert_and_read(self):
        table = _table()
        row_id = table.insert_row((1, "alice", 30))
        assert row_id == 0
        assert table.row_count == 1
        assert table.row(0) == (1, "alice", 30)
        assert table.value(0, "name") == "alice"

    def test_insert_wrong_width(self):
        table = _table()
        with pytest.raises(StorageError):
            table.insert_row((1, "alice"))

    def test_insert_dicts_with_missing_column(self):
        table = _table()
        table.insert_dicts([{"id": 1, "name": "bob"}])
        assert table.row(0) == (1, "bob", None)

    def test_insert_dicts_unknown_column(self):
        table = _table()
        with pytest.raises(StorageError):
            table.insert_dicts([{"id": 1, "oops": 2}])

    def test_iter_rows(self):
        table = _table()
        table.insert_rows([(1, "a", 10), (2, "b", 20)])
        assert list(table.iter_rows()) == [(1, "a", 10), (2, "b", 20)]
        assert list(table.iter_row_ids()) == [0, 1]

    def test_row_out_of_range(self):
        table = _table()
        with pytest.raises(StorageError):
            table.row(0)

    def test_unknown_column(self):
        table = _table()
        with pytest.raises(StorageError):
            table.column("missing")

    def test_estimated_pages(self):
        table = _table()
        assert table.estimated_pages() == 1
        table.insert_rows([(i, "x", i) for i in range(250)])
        assert table.estimated_pages(rows_per_page=100) == 3
