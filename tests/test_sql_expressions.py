"""Unit tests for expression binding: type inference, constant folding,
predicate classification and ``Cursor.description`` type codes."""

import pytest

import repro
from repro.catalog import ColumnType, make_schema
from repro.engine import Database
from repro.errors import BindError
from repro.sql import parse_expression
from repro.sql.ast import Literal
from repro.sql.binder import fold_constants


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        make_schema(
            "m",
            [
                ("id", ColumnType.INT),
                ("a", ColumnType.INT),
                ("b", ColumnType.INT),
                ("f", ColumnType.FLOAT),
                ("s", ColumnType.TEXT),
            ],
            primary_key="id",
        )
    )
    database.load_rows(
        "m",
        [
            (1, 2, 3, 1.5, "foo"),
            (2, 5, 0, 2.5, "bar"),
            (3, None, 7, None, None),
            (4, -4, 2, 0.5, "baz"),
        ],
    )
    database.finalize_load()
    return database


class TestTypeInference:
    def test_text_numeric_comparison_rejected(self, db):
        with pytest.raises(BindError, match="cannot compare"):
            db.parse("SELECT m.id FROM m WHERE m.s > 5")

    def test_arithmetic_over_text_rejected(self, db):
        with pytest.raises(BindError, match="needs numeric operands"):
            db.parse("SELECT m.s + 1 FROM m")

    def test_like_over_numeric_rejected(self, db):
        with pytest.raises(BindError, match="LIKE needs text operands"):
            db.parse("SELECT m.id FROM m WHERE m.a LIKE 'x%'")

    def test_boolean_connective_needs_boolean_operands(self, db):
        # Top-level ANDs split into conjuncts at parse time, so the bare
        # column surfaces as a non-boolean WHERE term; a nested ``OR`` hits
        # the connective's own operand check.
        with pytest.raises(BindError, match="not a boolean expression"):
            db.parse("SELECT m.id FROM m WHERE m.a AND m.b = 1")
        with pytest.raises(BindError, match="argument of OR must be a boolean"):
            db.parse("SELECT m.id FROM m WHERE m.a OR m.b = 1")

    def test_where_term_must_be_boolean(self, db):
        with pytest.raises(BindError, match="not a boolean expression"):
            db.parse("SELECT m.id FROM m WHERE m.a + 1")

    def test_case_branches_must_share_a_type(self, db):
        with pytest.raises(BindError, match="incompatible result types"):
            db.parse(
                "SELECT CASE WHEN m.a > 0 THEN 1 ELSE 'no' END FROM m"
            )

    def test_sum_over_expression_allowed(self, db):
        run = db.run("SELECT sum(m.a * m.b) AS v FROM m")
        # 2*3 + 5*0 + NULL*7 (skipped) + -4*2 = 6 + 0 - 8 = -2
        assert run.rows == [(-2,)]

    def test_sum_over_text_expression_rejected(self, db):
        with pytest.raises(BindError, match="not defined for text column"):
            db.parse("SELECT sum(m.s) FROM m")


class TestConstantFolding:
    def test_literal_arithmetic_folds(self):
        assert fold_constants(parse_expression("1 + 2 * 3")) == Literal(7)

    def test_division_by_zero_folds_to_null(self):
        assert fold_constants(parse_expression("1 / 0")) == Literal(None)
        assert fold_constants(parse_expression("1 % 0")) == Literal(None)

    def test_integer_division_truncates_toward_zero(self):
        assert fold_constants(parse_expression("7 / 2")) == Literal(3)
        assert fold_constants(parse_expression("-7 / 2")) == Literal(-3)
        assert fold_constants(parse_expression("-7 % 2")) == Literal(-1)

    def test_null_propagates_through_arithmetic(self):
        assert fold_constants(parse_expression("1 + NULL")) == Literal(None)

    def test_three_valued_comparison_folds(self):
        assert fold_constants(parse_expression("1 = NULL")) == Literal(None)
        assert fold_constants(parse_expression("NOT (1 = NULL)")) == Literal(None)

    def test_boolean_tree_folds(self):
        assert fold_constants(parse_expression("1 = 1 AND 2 < 3")) == Literal(True)
        assert fold_constants(parse_expression("1 = 2 OR NULL IS NULL")) == Literal(
            True
        )

    def test_case_folds(self):
        expr = parse_expression("CASE WHEN 1 = 2 THEN 'a' ELSE 'b' END")
        assert fold_constants(expr) == Literal("b")

    def test_partial_trees_do_not_fold(self):
        expr = parse_expression("a + 1 * 2")
        folded = fold_constants(expr)
        assert folded.to_sql() == "a + 2"


class TestConstantFilters:
    def test_always_true_filter_recorded_and_dropped(self, db):
        bound = db.parse("SELECT m.id FROM m WHERE 1 = 1 AND m.a > 0")
        assert len(bound.constant_filters) == 1
        assert bound.constant_filters[0].passes
        assert not bound.always_false
        assert len(bound.filters_for("m")) == 1

    def test_always_false_filter_marks_query(self, db):
        bound = db.parse("SELECT m.id FROM m WHERE 2 < 1")
        assert bound.always_false

    def test_null_constant_filter_is_false(self, db):
        bound = db.parse("SELECT m.id FROM m WHERE NULL IS NOT NULL")
        assert bound.always_false

    def test_planner_prunes_always_false(self, db):
        run = db.run("SELECT m.id FROM m WHERE 2 < 1")
        assert run.rows == []
        # The scan below the one-time filter never executed.
        labels = {
            node.label(): node.actual_rows for node in run.planned.plan.walk()
        }
        assert "Result (One-Time Filter: false)" in labels
        scan_label = next(k for k in labels if k.startswith("Seq Scan"))
        assert labels[scan_label] is None

    def test_always_false_aggregate_output_shape(self, db):
        run = db.run("SELECT count(*) AS n, sum(m.a) AS s FROM m WHERE 1 = 2")
        assert run.rows == [(0, None)]

    def test_explain_displays_one_time_filter(self, db):
        text = db.explain("SELECT m.id FROM m WHERE 1 = 1")
        assert "Result (One-Time Filter: true)" in text
        assert "One-Time Filter: 1 = 1" in text

    def test_both_engines_agree_on_pruned_query(self, db):
        from repro.engine import ExecutionEngine

        planned = db.plan("SELECT m.id, m.s FROM m WHERE 2 < 1 AND m.a > 0")
        vectorized = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
        reference = db.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan)
        assert vectorized.result.rows == reference.result.rows == []
        assert vectorized.total_work == reference.total_work == 0.0

    def test_no_column_unfoldable_predicate_rejected(self, db):
        with pytest.raises(BindError, match="references no FROM-clause column"):
            db.parse("SELECT m.id FROM m WHERE ? = 1")


class TestDescriptionTypeCodes:
    def _description(self, db, sql):
        with repro.connect(db) as connection:
            cursor = connection.execute(sql)
            return {name: code for name, code, *_ in cursor.description}

    def test_arithmetic_widening(self, db):
        codes = self._description(
            db,
            "SELECT m.a + m.b AS i, m.a + m.f AS x, m.a / m.b AS q FROM m",
        )
        assert codes["i"] is ColumnType.INT
        assert codes["x"] is ColumnType.FLOAT
        assert codes["q"] is ColumnType.INT  # integer division stays INT

    def test_case_common_type(self, db):
        codes = self._description(
            db,
            "SELECT CASE WHEN m.a > 0 THEN m.a ELSE m.f END AS c, "
            "CASE WHEN m.a > 0 THEN m.s ELSE 'x' END AS t FROM m",
        )
        assert codes["c"] is ColumnType.FLOAT  # INT widened with FLOAT
        assert codes["t"] is ColumnType.TEXT

    def test_comparison_is_int_coded(self, db):
        codes = self._description(db, "SELECT m.a > m.b AS flag FROM m")
        assert codes["flag"] is ColumnType.INT

    def test_aggregates_over_expressions(self, db):
        codes = self._description(
            db,
            "SELECT sum(m.a * m.b) AS si, sum(m.f * 2) AS sf, "
            "avg(m.a + 1) AS av, count(m.a * m.b) AS n, "
            "min(m.a - m.b) AS lo FROM m",
        )
        assert codes["si"] is ColumnType.INT
        assert codes["sf"] is ColumnType.FLOAT
        assert codes["av"] is ColumnType.FLOAT
        assert codes["n"] is ColumnType.INT
        assert codes["lo"] is ColumnType.INT

    def test_computed_column_display_name(self, db):
        with repro.connect(db) as connection:
            cursor = connection.execute("SELECT m.a + 1 FROM m")
            assert cursor.description[0][0] == "m.a + 1"


class TestComputedProjections:
    """Computed select-list expressions agree across both engines."""

    def test_projection_and_aggregate_agree(self, db):
        from repro.engine import ExecutionEngine

        sql = (
            "SELECT m.a * 2 - m.b AS v, CASE WHEN m.a IS NULL THEN -1 "
            "ELSE m.a % 3 END AS c FROM m"
        )
        planned = db.plan(sql)
        vectorized = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
        reference = db.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan)
        assert vectorized.result.rows == reference.result.rows
        # -4 % 3 is -1: modulo takes the dividend's sign (C semantics).
        assert vectorized.result.rows == [(1, 2), (10, 2), (None, -1), (-10, -1)]

    def test_grouped_aggregate_over_expression(self, db):
        run = db.run(
            "SELECT m.b AS k, sum(m.a * m.a) AS ss FROM m GROUP BY m.b "
            "ORDER BY k"
        )
        # groups by b: 0 -> 25, 2 -> 16, 3 -> 4, 7 -> NULL (a is NULL)
        assert run.rows == [(0, 25), (2, 16), (3, 4), (7, None)]

    def test_division_by_zero_column_is_null(self, db):
        run = db.run("SELECT m.a / m.b AS q FROM m")
        assert run.rows == [(0,), (None,), (None,), (-2,)]

    def test_order_by_output_name_of_computed_column(self, db):
        # Descending sorts place NULLs first (the engine's documented rule).
        run = db.run("SELECT m.a + m.b AS s FROM m ORDER BY s DESC")
        assert run.rows == [(None,), (5,), (5,), (-2,)]

    def test_unprojected_sort_with_computed_items_rejected(self, db):
        with pytest.raises(BindError, match="computed expressions"):
            db.parse("SELECT m.a + 1 AS v FROM m ORDER BY m.b")

    def test_grouped_computed_item_over_group_key(self, db):
        run = db.run(
            "SELECT m.b * 10 AS k10, count(*) AS n FROM m GROUP BY m.b "
            "ORDER BY k10"
        )
        assert run.rows == [(0, 1), (20, 1), (30, 1), (70, 1)]

    def test_grouped_computed_item_over_non_key_rejected(self, db):
        with pytest.raises(BindError, match="must appear in the GROUP BY"):
            db.parse("SELECT m.a + m.b FROM m GROUP BY m.b")
