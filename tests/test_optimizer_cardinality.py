"""Unit tests for selectivity and cardinality estimation."""

import pytest

from repro.errors import CardinalityError
from repro.optimizer import CardinalityEstimator, DictInjection, SelectivityEstimator
from repro.optimizer.cardinality import clamp_selectivity

from repro.sql.ast import (
    Between,
    BoolConnective,
    BoolExpr,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Like,
    Literal,
    column as col,
)


class TestSelectivityEstimator:
    def test_equality_uses_mcv(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        # Company 1 holds ~35% of the trades (skew planted by the fixture).
        selectivity = estimator.filter_selectivity(
            "trades", Comparison(ComparisonOp.EQ, col("t", "company_id"), Literal(1))
        )
        assert 0.25 < selectivity < 0.45

    def test_equality_rare_value(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        selectivity = estimator.filter_selectivity(
            "company", Comparison(ComparisonOp.EQ, col("c", "symbol"), Literal("SYM7"))
        )
        assert selectivity == pytest.approx(1.0 / 150, rel=0.5)

    def test_in_sums_equalities(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        single = estimator.filter_selectivity(
            "company", Comparison(ComparisonOp.EQ, col("c", "symbol"), Literal("SYM7"))
        )
        multiple = estimator.filter_selectivity(
            "company", InList(col("c", "symbol"), (Literal("SYM7"), Literal("SYM8"), Literal("SYM9")))
        )
        assert multiple == pytest.approx(3 * single, rel=0.01)

    def test_range_uses_histogram(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        selectivity = estimator.filter_selectivity(
            "trades", Comparison(ComparisonOp.LT, col("t", "shares"), Literal(2500))
        )
        assert 0.35 < selectivity < 0.65

    def test_between(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        selectivity = estimator.filter_selectivity(
            "trades", Between(col("t", "shares"), Literal(1000), Literal(4000))
        )
        assert 0.4 < selectivity < 0.8

    def test_null_predicate(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        selectivity = estimator.filter_selectivity(
            "trades", IsNull(col("t", "shares"))
        )
        assert selectivity <= 1.0e-6 or selectivity < 0.01

    def test_or_predicate(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        either = BoolExpr(
            BoolConnective.OR,
            (
                Comparison(ComparisonOp.EQ, col("c", "sector"), Literal("tech")),
                Comparison(ComparisonOp.EQ, col("c", "sector"), Literal("energy")),
            ),
        )
        selectivity = estimator.filter_selectivity("company", either)
        assert 0.3 < selectivity < 0.6

    def test_like_is_data_independent(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        contains = estimator.filter_selectivity(
            "company", Like(col("c", "symbol"), Literal("%YM1%"))
        )
        prefix = estimator.filter_selectivity(
            "company", Like(col("c", "symbol"), Literal("SYM1%"))
        )
        assert 0 < contains < 0.2
        assert 0 < prefix < 0.2

    def test_join_selectivity_uses_max_ndistinct(self, stock_db):
        estimator = SelectivityEstimator(stock_db.catalog)
        selectivity = estimator.join_predicate_selectivity(
            "company", "id", "trades", "company_id"
        )
        # nd(company.id)=150 dominates nd(trades.company_id)<=150.
        assert selectivity == pytest.approx(1.0 / 150, rel=0.1)

    def test_clamp(self):
        assert clamp_selectivity(2.0) == 1.0
        assert clamp_selectivity(-1.0) > 0


class TestCardinalityEstimator:
    def _estimator(self, db, injector=None):
        query = db.parse(
            "SELECT c.id FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM1' AND c.id = t.company_id",
            name="q",
        )
        return CardinalityEstimator(db.catalog, query, injector=injector), query

    def test_scan_cardinality(self, stock_db):
        estimator, _ = self._estimator(stock_db)
        rows = estimator.scan_cardinality("c")
        assert 0.5 <= rows <= 3

    def test_join_underestimated_under_skew(self, stock_db):
        """The uniformity assumption underestimates the skewed join (Section IV-C)."""
        estimator, query = self._estimator(stock_db)
        estimate = estimator.subset_cardinality(frozenset(query.aliases))
        actual = len(
            [
                row
                for row in stock_db.catalog.table("trades").iter_rows()
                if row[1] == 1
            ]
        )
        assert actual > 5 * estimate

    def test_memoization_counts_each_subset_once(self, stock_db):
        estimator, query = self._estimator(stock_db)
        subset = frozenset(query.aliases)
        first = estimator.subset_cardinality(subset)
        second = estimator.subset_cardinality(subset)
        assert first == second
        assert estimator.estimates_by_size[2] == 1

    def test_injection_overrides(self, stock_db):
        injection = DictInjection()
        estimator, query = self._estimator(stock_db, injector=injection)
        subset = frozenset(query.aliases)
        injection.set(subset, 1234)
        assert estimator.subset_cardinality(subset) == 1234

    def test_unknown_alias_rejected(self, stock_db):
        estimator, _ = self._estimator(stock_db)
        with pytest.raises(CardinalityError):
            estimator.subset_cardinality(frozenset({"zz"}))
        with pytest.raises(CardinalityError):
            estimator.subset_cardinality(frozenset())

    def test_invalidate(self, stock_db):
        injection = DictInjection()
        estimator, query = self._estimator(stock_db, injector=injection)
        subset = frozenset(query.aliases)
        before = estimator.subset_cardinality(subset)
        injection.set(subset, 99999)
        # Memoized: unchanged until invalidated.
        assert estimator.subset_cardinality(subset) == before
        estimator.invalidate(subset)
        assert estimator.subset_cardinality(subset) == 99999
