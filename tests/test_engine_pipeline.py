"""Unit tests for the query-lifecycle pipeline, interceptors and plan cache."""

import pytest

from repro.core import ReoptimizationInterceptor, ReoptimizationPolicy
from repro.engine import (
    ExplainCaptureInterceptor,
    MetricsInterceptor,
    PlanCache,
    PlanCacheInterceptor,
    QueryInterceptor,
    QueryPipeline,
)
from repro.errors import InterfaceError, ParameterError

SKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
)
SIMPLE_SQL = "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'"


class TestLifecycleStages:
    def test_stages_fill_context(self, stock_db):
        ctx = QueryPipeline(stock_db).run(SIMPLE_SQL)
        assert ctx.parsed is not None
        assert ctx.bound is not None
        assert ctx.planned is not None
        assert ctx.execution is not None
        assert ctx.rows == stock_db.run(SIMPLE_SQL).rows
        assert ctx.planning_seconds > 0
        assert ctx.execution_seconds > 0
        assert not ctx.reoptimized

    def test_bound_query_skips_parse_and_bind(self, stock_db):
        bound = stock_db.parse(SIMPLE_SQL)
        ctx = QueryPipeline(stock_db).run(bound=bound)
        assert ctx.parsed is None
        assert ctx.bound is bound

    def test_requires_sql_or_bound(self, stock_db):
        with pytest.raises(InterfaceError):
            QueryPipeline(stock_db).run()

    def test_params_substituted_in_bind_stage(self, stock_db):
        ctx = QueryPipeline(stock_db).run(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?",
            params=("tech",),
        )
        assert ctx.rows == stock_db.run(SIMPLE_SQL).rows

    def test_unbound_parameters_rejected(self, stock_db):
        with pytest.raises(ParameterError):
            QueryPipeline(stock_db).run(
                "SELECT c.id FROM company AS c WHERE c.sector = ?"
            )


class TestInterceptorOrdering:
    def test_interceptors_wrap_outermost_first(self, stock_db):
        calls = []

        class Tracer(QueryInterceptor):
            def __init__(self, tag):
                self.tag = tag

            def around_plan(self, ctx, proceed):
                calls.append(f"enter-{self.tag}")
                ctx = proceed(ctx)
                calls.append(f"exit-{self.tag}")
                return ctx

        QueryPipeline(stock_db, [Tracer("a"), Tracer("b")]).run(SIMPLE_SQL)
        assert calls == ["enter-a", "enter-b", "exit-b", "exit-a"]

    def test_short_circuit_skips_inner_interceptors(self, stock_db):
        seen = []

        class ShortCircuit(QueryInterceptor):
            def around_plan(self, ctx, proceed):
                ctx.planned = stock_db.plan(ctx.bound)
                return ctx

        class Inner(QueryInterceptor):
            def around_plan(self, ctx, proceed):
                seen.append("inner")
                return proceed(ctx)

        ctx = QueryPipeline(stock_db, [ShortCircuit(), Inner()]).run(SIMPLE_SQL)
        assert seen == []
        assert ctx.execution is not None


class TestPlanCacheInterceptor:
    def _pipeline(self, db, cache):
        return QueryPipeline(db, [PlanCacheInterceptor(cache)])

    def test_repeat_statement_hits(self, stock_db):
        cache = PlanCache(8)
        pipeline = self._pipeline(stock_db, cache)
        first = pipeline.run(SIMPLE_SQL)
        second = pipeline.run(SIMPLE_SQL)
        assert not first.plan_cached
        assert second.plan_cached
        assert second.planned is first.planned
        assert second.rows == first.rows
        assert second.planning_seconds == 0.0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_normalized_sql_shares_entries(self, stock_db):
        # Same statement, different whitespace/keyword case: one cache entry.
        cache = PlanCache(8)
        pipeline = self._pipeline(stock_db, cache)
        pipeline.run(SIMPLE_SQL)
        ctx = pipeline.run(
            "select   count(c.id) AS n\nFROM company AS c\nwhere c.sector = 'tech'"
        )
        assert ctx.plan_cached

    def test_analyze_invalidates(self, stock_db):
        cache = PlanCache(8)
        pipeline = self._pipeline(stock_db, cache)
        pipeline.run(SIMPLE_SQL)
        epoch = stock_db.catalog.epoch
        stock_db.analyze(["company"])
        assert stock_db.catalog.epoch > epoch
        ctx = pipeline.run(SIMPLE_SQL)
        assert not ctx.plan_cached

    def test_index_creation_invalidates(self, stock_db):
        cache = PlanCache(8)
        pipeline = self._pipeline(stock_db, cache)
        pipeline.run(SIMPLE_SQL)
        stock_db.create_index("company", "sector")
        ctx = pipeline.run(SIMPLE_SQL)
        assert not ctx.plan_cached

    def test_temp_table_ddl_invalidates(self, stock_db):
        cache = PlanCache(8)
        pipeline = self._pipeline(stock_db, cache)
        pipeline.run(SIMPLE_SQL)
        planned = stock_db.plan("SELECT c.id FROM company AS c WHERE c.id = 1")
        execution = stock_db.executor.execute(planned.plan.child)
        name = stock_db.next_temp_table_name()
        stock_db.create_temp_table_from_result(
            name, execution.result, [(("c", "id"), "c_id")]
        )
        ctx = pipeline.run(SIMPLE_SQL)
        assert not ctx.plan_cached
        stock_db.drop_table(name)
        ctx = pipeline.run(SIMPLE_SQL)
        assert not ctx.plan_cached  # drop bumped the epoch again

    def test_injector_bypasses_cache(self, stock_db):
        from repro.core import TrueCardinalityOracle

        cache = PlanCache(8)
        pipeline = self._pipeline(stock_db, cache)
        injector = TrueCardinalityOracle(stock_db).perfect_injection(17)
        bound = stock_db.parse(SKEWED_SQL)
        pipeline.run(bound=bound, injector=injector)
        pipeline.run(bound=bound, injector=injector)
        assert cache.stats.lookups == 0
        assert len(cache) == 0

    def test_lru_eviction(self, stock_db):
        cache = PlanCache(2)
        pipeline = self._pipeline(stock_db, cache)
        statements = [
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'",
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'energy'",
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'health'",
        ]
        for sql in statements:
            pipeline.run(sql)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest statement was evicted; the newest two still hit.
        assert pipeline.run(statements[0]).plan_cached is False
        assert pipeline.run(statements[2]).plan_cached is True

    def test_stale_entries_pruned_eagerly_on_epoch_bump(self, stock_db):
        # A tiny cache must stay fully usable across ANALYZE churn: entries
        # stranded by an epoch bump are dropped on the first probe after it
        # (counted as stale_evictions), instead of squatting in the LRU
        # capacity and pushing out live plans.
        cache = PlanCache(2)
        pipeline = self._pipeline(stock_db, cache)
        statements = [
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'",
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'energy'",
        ]
        for _ in range(3):  # repeated ANALYZE/DDL churn rounds
            for sql in statements:
                pipeline.run(sql)
            # Both plans are live: re-running hits without evicting anything.
            assert pipeline.run(statements[0]).plan_cached
            assert pipeline.run(statements[1]).plan_cached
            stock_db.analyze(["company"])
        # Each bump pruned both stranded entries on the next probe (the last
        # bump's victims go on this final probe); the capacity-2 LRU itself
        # never had to evict a live plan.
        ctx = pipeline.run(statements[0])
        assert not ctx.plan_cached
        assert cache.stats.stale_evictions == 6
        assert cache.stats.evictions == 0
        assert len(cache) == 1

    def test_zero_capacity_disables(self, stock_db):
        cache = PlanCache(0)
        pipeline = self._pipeline(stock_db, cache)
        pipeline.run(SIMPLE_SQL)
        ctx = pipeline.run(SIMPLE_SQL)
        assert not ctx.plan_cached
        assert cache.stats.lookups == 0


class TestObservabilityInterceptors:
    def test_metrics_interceptor_accumulates(self, stock_db):
        metrics_interceptor = MetricsInterceptor()
        pipeline = QueryPipeline(stock_db, [metrics_interceptor])
        ctx = pipeline.run(SIMPLE_SQL)
        pipeline.run(SKEWED_SQL)
        metrics = metrics_interceptor.metrics
        assert metrics.statements == 2
        assert metrics.rows_returned == 2
        assert metrics.planning_seconds > 0
        assert metrics.execution_seconds > 0
        assert set(ctx.stage_seconds) == {"parse", "bind", "plan", "execute"}
        for stage in ("parse", "bind", "plan", "execute"):
            assert metrics.stage_wall_seconds[stage] >= ctx.stage_seconds[stage]

    def test_explain_capture(self, stock_db):
        pipeline = QueryPipeline(stock_db, [ExplainCaptureInterceptor()])
        ctx = pipeline.run(SIMPLE_SQL)
        assert ctx.explain_text is not None
        assert "actual_rows" in ctx.explain_text


class TestReoptimizationInterceptor:
    def test_reoptimizes_skewed_query(self, stock_db):
        pipeline = QueryPipeline(
            stock_db,
            [ReoptimizationInterceptor(ReoptimizationPolicy(threshold=4))],
        )
        ctx = pipeline.run(SKEWED_SQL)
        assert ctx.reoptimized
        assert ctx.report is not None and ctx.report.steps
        baseline = stock_db.run(SKEWED_SQL)
        assert ctx.rows == baseline.rows
        # Temp tables are cleaned up by default.
        assert all(not name.startswith("__temp") for name in stock_db.catalog)

    def test_cached_initial_plan_charges_no_initial_planning(self, stock_db):
        cache = PlanCache(8)
        policy = ReoptimizationPolicy(threshold=4)
        pipeline = QueryPipeline(
            stock_db,
            [PlanCacheInterceptor(cache), ReoptimizationInterceptor(policy)],
        )
        cold = pipeline.run(SIMPLE_SQL)
        warm = pipeline.run(SIMPLE_SQL)
        assert warm.plan_cached
        assert cold.report.total_planning_work > 0
        assert warm.report.total_planning_work == 0.0
        assert warm.rows == cold.rows
