"""Unit tests for boolean-tree normalization and residual join planning."""

import pytest

from repro.catalog import ColumnType, make_schema
from repro.engine import Database, ExecutionEngine
from repro.optimizer.rewrite import push_not_down, split_conjuncts, to_cnf
from repro.sql import parse_expression
from repro.sql.ast import (
    Between,
    BoolConnective,
    BoolExpr,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Like,
    Not,
)


class TestNegationPushdown:
    def test_comparison_complements(self):
        expr = push_not_down(parse_expression("NOT a < 5"))
        assert isinstance(expr, Comparison)
        assert expr.op is ComparisonOp.GE

    def test_de_morgan(self):
        expr = push_not_down(parse_expression("NOT (a = 1 AND b = 2)"))
        assert isinstance(expr, BoolExpr) and expr.op is BoolConnective.OR
        assert all(isinstance(op, Comparison) for op in expr.operands)
        assert [op.op for op in expr.operands] == [ComparisonOp.NE, ComparisonOp.NE]

    def test_double_negation(self):
        expr = push_not_down(parse_expression("NOT NOT a = 1"))
        assert isinstance(expr, Comparison) and expr.op is ComparisonOp.EQ

    def test_negated_leaf_forms_toggle(self):
        null = push_not_down(parse_expression("NOT (a IS NULL)"))
        assert isinstance(null, IsNull) and null.negated
        within = push_not_down(parse_expression("NOT (a BETWEEN 1 AND 2)"))
        assert isinstance(within, Between) and within.negated
        member = push_not_down(parse_expression("NOT (a IN (1, 2))"))
        assert isinstance(member, InList) and member.negated
        pattern = push_not_down(parse_expression("NOT (a LIKE 'x%')"))
        assert isinstance(pattern, Like) and pattern.negated

    def test_unpushable_not_kept(self):
        expr = push_not_down(
            parse_expression("NOT (CASE WHEN a = 1 THEN b = 2 ELSE a = 3 END)")
        )
        assert isinstance(expr, Not)


class TestCNF:
    def test_or_of_ands_distributes(self):
        clauses = to_cnf(parse_expression("(a = 1 AND b = 2) OR (a = 3 AND b = 4)"))
        assert len(clauses) == 4
        assert all(
            isinstance(c, BoolExpr) and c.op is BoolConnective.OR for c in clauses
        )

    def test_plain_conjunction_splits(self):
        clauses = to_cnf(parse_expression("a = 1 AND b = 2 AND c = 3"))
        assert len(clauses) == 3

    def test_budget_keeps_tree_whole(self):
        disjuncts = " OR ".join(f"(a = {i} AND b = {i})" for i in range(8))
        clauses = to_cnf(parse_expression(disjuncts), budget=16)
        # 2^8 = 256 clauses exceed the budget: kept as one exact conjunct.
        assert len(clauses) == 1

    def test_split_conjuncts_flattens(self):
        conjuncts = split_conjuncts(parse_expression("a = 1 AND (b = 2 AND c = 3)"))
        assert len(conjuncts) == 3


@pytest.fixture()
def pair_db() -> Database:
    db = Database()
    db.create_table(
        make_schema(
            "lhs",
            [("id", ColumnType.INT), ("x", ColumnType.INT), ("tag", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "rhs",
            [
                ("id", ColumnType.INT),
                ("lhs_id", ColumnType.INT),
                ("y", ColumnType.INT),
            ],
            primary_key="id",
            foreign_keys=[("lhs_id", "lhs", "id")],
        )
    )
    db.load_rows("lhs", [(i, i * 2, "ab"[i % 2]) for i in range(1, 7)])
    db.load_rows(
        "rhs",
        [(i, (i % 6) + 1, 15 - i) for i in range(1, 13)]
        + [(13, None, None), (14, 3, None)],
    )
    db.finalize_load()
    return db


def _python_rows(db):
    lhs = list(db.catalog.table("lhs").iter_rows())
    rhs = list(db.catalog.table("rhs").iter_rows())
    return lhs, rhs


class TestCNFPushdown:
    def test_cross_table_or_of_ands_pushes_single_table_clauses(self, pair_db):
        bound = pair_db.parse(
            "SELECT count(*) AS n FROM lhs AS l, rhs AS r "
            "WHERE l.id = r.lhs_id AND "
            "((l.x = 2 AND r.y > 5) OR (l.x = 4 AND r.y > 5))"
        )
        # CNF distributes: (l.x=2 OR l.x=4) pushes to the lhs scan, (r.y>5)
        # to the rhs scan; the two mixed clauses remain residual.
        assert len(bound.filters_for("l")) == 1
        assert len(bound.filters_for("r")) == 1
        assert len(bound.residuals) == 2

    def test_pushdown_preserves_semantics(self, pair_db):
        sql = (
            "SELECT l.id, r.id FROM lhs AS l, rhs AS r "
            "WHERE l.id = r.lhs_id AND "
            "((l.x = 2 AND r.y > 5) OR (l.x = 4 AND r.y > 5))"
        )
        run = pair_db.run(sql)
        lhs, rhs = _python_rows(pair_db)
        expected = sorted(
            (lrow[0], rrow[0])
            for lrow in lhs
            for rrow in rhs
            if rrow[1] == lrow[0]
            and (
                (lrow[1] == 2 and rrow[2] is not None and rrow[2] > 5)
                or (lrow[1] == 4 and rrow[2] is not None and rrow[2] > 5)
            )
        )
        assert sorted(run.rows) == expected


class TestResidualJoins:
    def test_non_equi_join_executes_on_both_engines(self, pair_db):
        sql = (
            "SELECT l.id, r.id FROM lhs AS l, rhs AS r WHERE l.x < r.y"
        )
        planned = pair_db.plan(sql)
        vectorized = pair_db.executor_for(ExecutionEngine.VECTORIZED).execute(
            planned.plan
        )
        reference = pair_db.executor_for(ExecutionEngine.REFERENCE).execute(
            planned.plan
        )
        assert vectorized.result.rows == reference.result.rows
        assert vectorized.total_work == reference.total_work
        lhs, rhs = _python_rows(pair_db)
        expected = sorted(
            (lrow[0], rrow[0])
            for lrow in lhs
            for rrow in rhs
            if rrow[2] is not None and lrow[1] < rrow[2]
        )
        assert sorted(vectorized.result.rows) == expected

    def test_equi_join_with_residual_filter(self, pair_db):
        sql = (
            "SELECT count(*) AS n FROM lhs AS l, rhs AS r "
            "WHERE l.id = r.lhs_id AND l.x <> r.y"
        )
        run = pair_db.run(sql)
        lhs, rhs = _python_rows(pair_db)
        expected = sum(
            1
            for lrow in lhs
            for rrow in rhs
            if rrow[1] == lrow[0] and rrow[2] is not None and lrow[1] != rrow[2]
        )
        assert run.rows == [(expected,)]

    def test_explain_marks_pushed_down_vs_residual(self, pair_db):
        text = pair_db.explain(
            "SELECT count(*) AS n FROM lhs AS l, rhs AS r "
            "WHERE l.id = r.lhs_id AND l.x + 1 < r.y AND l.tag = 'a'"
        )
        assert "Filter (pushed down): l.tag = 'a'" in text
        assert "Join Filter (residual): l.x + 1 < r.y" in text

    def test_residual_only_join_plans_nested_loop(self, pair_db):
        planned = pair_db.plan(
            "SELECT count(*) AS n FROM lhs AS l, rhs AS r WHERE l.x < r.y"
        )
        joins = planned.plan.join_nodes()
        assert len(joins) == 1
        assert not joins[0].join_predicates
        assert joins[0].residual_filters
        assert "Nested Loop" in joins[0].label()

    def test_residual_join_through_serving_pipeline(self, pair_db):
        import repro

        with repro.connect(pair_db) as connection:
            cursor = connection.execute(
                "SELECT count(*) AS n FROM lhs AS l, rhs AS r "
                "WHERE l.id = r.lhs_id AND (l.x > r.y OR r.y IS NULL)"
            )
            rows = cursor.fetchall()
        lhs, rhs = _python_rows(pair_db)
        expected = sum(
            1
            for lrow in lhs
            for rrow in rhs
            if rrow[1] == lrow[0]
            and (rrow[2] is None or (lrow[1] is not None and lrow[1] > rrow[2]))
        )
        assert rows == [(expected,)]

    def test_residual_spanning_three_tables(self, pair_db):
        """A residual over 3 aliases plans (the bridged pairs cross-join).

        The pair subsets are connected only through the wider residual, so
        the enumerator must give them plain cross-product candidates and
        apply the filter at the first join covering all three aliases.
        """
        sql = (
            "SELECT count(*) AS n FROM lhs AS l, rhs AS r, rhs AS s "
            "WHERE l.x + r.y < s.y * 2 AND l.id = 1 AND r.id = 2 AND s.id = 3"
        )
        run = pair_db.run(sql)
        lhs, rhs = _python_rows(pair_db)
        expected = sum(
            1
            for lrow in lhs
            for rrow in rhs
            for srow in rhs
            if lrow[0] == 1
            and rrow[0] == 2
            and srow[0] == 3
            and rrow[2] is not None
            and srow[2] is not None
            and lrow[1] + rrow[2] < srow[2] * 2
        )
        assert run.rows == [(expected,)]
        trigger = next(
            node
            for node in run.planned.plan.join_nodes()
            if node.residual_filters
        )
        assert len(trigger.aliases) == 3

    def test_reoptimization_preserves_residual_semantics(self, pair_db):
        """The materialize-and-rewrite loop keeps residual filters intact."""
        import repro
        from repro.core.triggers import ReoptimizationPolicy
        from repro.optimizer.injection import CardinalityInjector

        class UnderestimateJoins(CardinalityInjector):
            def lookup(self, query, subset):
                return 1.0 if len(subset) > 1 else None

        sql = (
            "SELECT count(*) AS n FROM lhs AS l, rhs AS r "
            "WHERE l.id = r.lhs_id AND l.x <> r.y"
        )
        expected = pair_db.run(sql).rows
        policy = ReoptimizationPolicy(threshold=2.0)
        for adaptive in (False, True):
            with repro.connect(pair_db, policy=policy, adaptive=adaptive) as conn:
                ctx = conn.pipeline.run(sql=sql, injector=UnderestimateJoins())
                assert ctx.rows == expected, f"adaptive={adaptive}"
