"""Unit tests for the cardinality-strategy interface and engine configuration."""

import pytest

from repro.engine import Database, EngineSettings, connect
from repro.engine.settings import ESTIMATOR_NAMES
from repro.errors import ConfigError
from repro.optimizer.cardinality import MIN_ROWS, scan_upper_bound
from repro.optimizer.estimators import (
    STRATEGIES,
    FeedbackEstimator,
    SamplingEstimator,
    StatsEstimator,
    UpperBoundEstimator,
    create_strategy,
    strategy_names,
)
from repro.server import Server, ServerConfig

SKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
)


def _subset(query, *aliases):
    return frozenset(aliases)


class TestStrategyRegistry:
    def test_settings_names_match_registry(self):
        """ESTIMATOR_NAMES is spelled out in settings.py; keep it in sync."""
        assert sorted(ESTIMATOR_NAMES) == strategy_names()
        assert set(STRATEGIES) == set(ESTIMATOR_NAMES)

    def test_create_strategy_unknown_name(self, stock_db):
        with pytest.raises(ValueError, match="unknown estimator"):
            create_strategy("exact", stock_db.catalog)

    def test_feedback_strategy_shares_store(self, stock_db):
        strategy = create_strategy(
            "feedback", stock_db.catalog, feedback=stock_db.feedback
        )
        assert strategy.store is stock_db.feedback


class TestStatsEstimator:
    def test_matches_selectivity_scan_rows(self, stock_db):
        query = stock_db.parse(SKEWED_SQL, name="stats")
        strategy = StatsEstimator(stock_db.catalog)
        strategy.setup_for_query(query)
        expected = strategy.selectivity.scan_rows(
            query.table_for("c"), query.filters_for("c")
        )
        assert strategy.estimate_subset(query, _subset(query, "c")) == expected
        # Joins defer to the built-in model.
        assert strategy.estimate_subset(query, _subset(query, "c", "t")) is None

    def test_default_strategy_plans_identically(self, stock_db):
        """The default strategy must not change any plan (paper-figure gate)."""
        query = stock_db.parse(SKEWED_SQL, name="identical")
        with_strategy = stock_db.plan(query)
        stock_db.optimizer.strategy = None
        try:
            without_strategy = stock_db.plan(query)
        finally:
            stock_db.optimizer.strategy = stock_db._build_strategy("stats")
        assert with_strategy.plan.label() == without_strategy.plan.label()
        assert with_strategy.stats.planning_work == without_strategy.stats.planning_work
        for a, b in zip(
            with_strategy.plan.walk(), without_strategy.plan.walk()
        ):
            assert a.label() == b.label()
            assert a.estimated_rows == b.estimated_rows


class TestUpperBoundEstimator:
    def test_bounds_are_products_of_table_bounds(self, stock_db):
        query = stock_db.parse(SKEWED_SQL, name="bounds")
        strategy = UpperBoundEstimator(stock_db.catalog)
        single = strategy.estimate_subset(query, _subset(query, "t"))
        trades_rows = strategy.selectivity.table_rows("trades")
        bound = scan_upper_bound(stock_db.catalog, "trades", query.filters_for("t"))
        assert single == max(MIN_ROWS, bound if bound is not None else trades_rows)
        joint = strategy.estimate_subset(query, _subset(query, "c", "t"))
        company = strategy.estimate_subset(query, _subset(query, "c"))
        assert joint == pytest.approx(single * company)

    def test_never_underestimates_scans(self, stock_db):
        query = stock_db.parse(SKEWED_SQL, name="sound")
        strategy = UpperBoundEstimator(stock_db.catalog)
        actual = sum(
            1
            for row in stock_db.catalog.table("company").iter_rows()
            if row[1] == "SYM1"
        )
        assert strategy.estimate_subset(query, _subset(query, "c")) >= actual


class TestSamplingEstimator:
    def test_estimates_from_reservoir_sample(self, stock_db):
        stock_db.analyze()
        query = stock_db.parse(SKEWED_SQL, name="sampled")
        strategy = SamplingEstimator(stock_db.catalog)
        estimate = strategy.estimate_subset(query, _subset(query, "c"))
        sample = stock_db.catalog.stats("company").sample
        assert sample, "ANALYZE must maintain a reservoir sample"
        assert estimate is not None and estimate >= MIN_ROWS
        # The scaled match fraction can never exceed the table itself.
        assert estimate <= stock_db.catalog.table("company").row_count

    def test_defers_without_filters_or_sample(self, stock_db):
        query = stock_db.parse(SKEWED_SQL, name="defer")
        strategy = SamplingEstimator(stock_db.catalog)
        # No filters on the trades alias -> defer.
        assert strategy.estimate_subset(query, _subset(query, "t")) is None
        # Joins always defer.
        assert strategy.estimate_subset(query, _subset(query, "c", "t")) is None
        # Empty the sample -> defer.
        stock_db.catalog.stats("company").sample = []
        assert strategy.estimate_subset(query, _subset(query, "c")) is None

    def test_sample_disabled_by_settings(self):
        db = Database(EngineSettings(sample_rows=0))
        from repro.catalog import ColumnType, make_schema

        db.create_table(make_schema("x", [("id", ColumnType.INT)]))
        db.load_rows("x", [(i,) for i in range(50)])
        db.finalize_load()
        assert db.catalog.stats("x").sample == []


class TestFeedbackEstimator:
    def test_prefers_observed_cardinalities(self, stock_db):
        query = stock_db.parse(SKEWED_SQL, name="observed")
        strategy = FeedbackEstimator(stock_db.catalog, stock_db.feedback)
        subset = _subset(query, "c", "t")
        assert strategy.estimate_subset(query, subset) is None  # cold: defer
        stock_db.feedback.record(query, subset, 1234.0)
        assert strategy.estimate_subset(query, subset) == 1234.0
        assert "feedback" in strategy.describe()

    def test_reduces_replans_on_repeated_workload(self, stock_db):
        """Run 2 of the same statement re-plans less than run 1 (satellite)."""
        from repro.core import ReoptimizationPolicy

        stock_db.set_estimator("feedback")
        conn = connect(
            stock_db, policy=ReoptimizationPolicy(threshold=4), plan_cache_size=0
        )
        first = conn.execute(SKEWED_SQL).context
        assert first.reoptimized, "run 1 must trigger at least one re-plan"
        assert len(stock_db.feedback) > 0, "harvest must populate the store"
        second = conn.execute(SKEWED_SQL).context
        assert len(second.report.steps) < len(first.report.steps)
        assert not second.reoptimized
        assert second.rows == first.rows


class TestEngineSettingsResolution:
    def test_precedence_kwarg_beats_settings_beats_default(self):
        base = EngineSettings(workers=2, estimator="sampling")
        resolved = EngineSettings.resolve(base, workers=8)
        assert resolved.workers == 8  # explicit kwarg wins
        assert resolved.estimator == "sampling"  # settings object second
        assert resolved.morsel_size == EngineSettings().morsel_size  # default

    def test_none_overrides_mean_unspecified(self):
        base = EngineSettings(workers=3)
        assert EngineSettings.resolve(base, workers=None).workers == 3

    def test_unknown_setting_names_nearest_field(self):
        with pytest.raises(ConfigError, match="did you mean 'workers'"):
            EngineSettings().replace(worker=3)
        with pytest.raises(ConfigError, match="unknown engine setting"):
            EngineSettings.resolve(None, plan_cash_size=7)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            EngineSettings(workers=0)
        with pytest.raises(ConfigError, match="unknown estimator"):
            EngineSettings(estimator="exact")

    def test_replace_returns_validated_copy(self):
        base = EngineSettings()
        derived = base.replace(estimator="feedback", workers=6)
        assert (derived.estimator, derived.workers) == ("feedback", 6)
        assert base.estimator == "stats"  # original untouched

    def test_connect_applies_overrides_to_existing_database(self, stock_db):
        conn = connect(stock_db, estimator="upper-bound")
        assert stock_db.settings.estimator == "upper-bound"
        assert stock_db.estimator_strategy.name == "upper-bound"
        conn.close()

    def test_connect_rejects_unknown_keyword(self, stock_db):
        with pytest.raises(ConfigError, match="did you mean 'estimator'"):
            connect(stock_db, estimater="stats")


class TestServerConfigResolution:
    def test_overrides_lower_onto_config(self, stock_db):
        server = Server(stock_db, ServerConfig(workers=2), queue_depth=3)
        try:
            assert server.config.workers == 2
            assert server.config.queue_depth == 3
        finally:
            server.close()

    def test_unknown_server_setting(self, stock_db):
        with pytest.raises(ConfigError, match="did you mean 'workers'"):
            Server(stock_db, worker=2)

    def test_invalid_server_values(self):
        with pytest.raises(ConfigError):
            ServerConfig(workers=0)
