"""Late-materializing scans: projection pushdown, compressed-domain kernels,
segment skipping.

Every engine-level test here runs the *same planned query* through all three
engines over compressed partitioned storage and pins the rows against an
identically loaded but uncompressed copy — the decode path is the oracle for
the compressed-domain kernels, and the row-at-a-time reference engine
(always full-width) is the oracle for projection pushdown.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.schema import ColumnType, PartitionSpec, make_schema
from repro.engine import Database, ExecutionEngine
from repro.engine.settings import EngineSettings
from repro.executor.scan import _dictionary_filter, _rle_filter
from repro.optimizer.plan import ScanNode
from repro.storage.compression import (
    BLOCK_ROWS,
    DictionarySegment,
    RLESegment,
    compute_block_stats,
    encode_segment,
)

ENGINES = (
    ExecutionEngine.VECTORIZED,
    ExecutionEngine.REFERENCE,
    ExecutionEngine.PARALLEL,
)

ROWS_PER_SHARD = BLOCK_ROWS * 2 + 500  # forces multiple stat blocks per shard
NUM_SHARDS = 3


def wide_schema(bounds=(ROWS_PER_SHARD, ROWS_PER_SHARD * 2)):
    return make_schema(
        "events",
        [
            ("id", ColumnType.INT),
            ("cat", ColumnType.TEXT),  # low cardinality -> dictionary
            ("phase", ColumnType.TEXT),  # long runs -> RLE
            ("val", ColumnType.INT),  # distinct -> plain
            ("note", ColumnType.TEXT),  # NULL-heavy
        ],
        primary_key="id",
        partition_by=PartitionSpec(method="range", column="id", bounds=bounds),
    )


def event_rows(count=ROWS_PER_SHARD * NUM_SHARDS, seed=42):
    rng = random.Random(seed)
    rows = []
    for i in range(count):
        # Runs of 1500 straddle both the 1024-row stat blocks and the
        # shard boundaries at multiples of ROWS_PER_SHARD.
        phase = f"phase{(i // 1500) % 4}"
        cat = "needle" if i % 97 == 0 else f"cat{rng.randrange(5)}"
        note = None if i % 3 else f"note{i % 7}"
        rows.append((i, cat, phase, rng.randrange(10_000), note))
    return rows


def build_pair(rows=None, codec="auto"):
    """The same rows twice: compressed and uncompressed partitioned tables."""
    rows = event_rows() if rows is None else rows
    databases = []
    for compress in (True, False):
        db = Database(EngineSettings(workers=3, morsel_size=512))
        db.create_table(wide_schema())
        db.load_rows("events", rows)
        db.finalize_load()
        if compress:
            db.catalog.table("events").compress(codec)
        databases.append(db)
    return databases


def assert_engines_agree(compressed: Database, plain: Database, sql: str):
    """One plan per database; all engines and both storages emit equal rows."""
    planned = compressed.plan(sql)
    results = [
        compressed.executor_for(engine).execute(planned.plan).result.rows
        for engine in ENGINES
    ]
    oracle = plain.run(sql).rows
    for engine, rows in zip(ENGINES, results):
        assert rows == oracle, f"{engine.value} diverged on {sql!r}"
    return oracle


# -- compressed-domain kernels vs the decode path -----------------------------


def test_rle_runs_spanning_block_and_shard_boundaries():
    compressed, plain = build_pair()
    table = compressed.catalog.table("events")
    phase_position = table.schema.column_index("phase")
    assert any(
        isinstance(partition.segment_at(phase_position), RLESegment)
        for partition in table.partitions()
    )
    rows = assert_engines_agree(
        compressed,
        plain,
        "SELECT e.id AS id, e.phase AS phase FROM events AS e "
        "WHERE e.phase = 'phase1'",
    )
    assert rows  # runs straddle shard 0/1: both sides must contribute
    # A second conjunct makes the run kernel consume a candidate list.
    assert_engines_agree(
        compressed,
        plain,
        "SELECT e.id AS id FROM events AS e "
        "WHERE e.phase IN ('phase0', 'phase2') AND e.cat = 'needle'",
    )


def test_dictionary_kernel_with_all_null_segment():
    rows = event_rows()
    # Shard 0 stores only NULL notes; forced dictionary codec gives a
    # NULL-only dictionary segment there.
    rows = [
        row[:4] + ((None,) if row[0] < ROWS_PER_SHARD else row[4:])
        for row in rows
    ]
    compressed, plain = build_pair(rows, codec="dictionary")
    table = compressed.catalog.table("events")
    note_position = table.schema.column_index("note")
    first = table.partitions()[0].segment_at(note_position)
    assert isinstance(first, DictionarySegment)
    assert set(first.dictionary) == {None}
    assert_engines_agree(
        compressed,
        plain,
        "SELECT e.id AS id FROM events AS e WHERE e.note = 'note1'",
    )
    assert_engines_agree(
        compressed,
        plain,
        "SELECT e.id AS id FROM events AS e WHERE e.note IS NULL "
        "AND e.id < 9000",
    )


def test_empty_partitions_scan_clean():
    # Every row routes below the first bound: shards 1 and 2 stay empty.
    rows = event_rows(count=800)
    compressed, plain = build_pair(rows)
    assert [p.row_count for p in compressed.catalog.table("events").partitions()][
        1:
    ] == [0, 0]
    assert_engines_agree(
        compressed,
        plain,
        "SELECT e.id AS id, e.cat AS cat FROM events AS e "
        "WHERE e.cat = 'needle' AND e.phase <> 'phase9'",
    )


def test_seeded_fuzz_compressed_domain_agrees_with_decode_path():
    compressed, plain = build_pair()
    rng = random.Random(20190214)
    predicates = []
    for _ in range(25):
        clauses = rng.sample(
            [
                f"e.cat = 'cat{rng.randrange(6)}'",
                f"e.phase <> 'phase{rng.randrange(4)}'",
                f"e.val BETWEEN {rng.randrange(5000)} AND {rng.randrange(5000, 10000)}",
                f"e.id >= {rng.randrange(ROWS_PER_SHARD * NUM_SHARDS)}",
                "e.note IS NULL",
                "e.note IN ('note1', 'note4', 'missing')",
                "e.cat LIKE 'cat%'",
                f"NOT (e.phase = 'phase{rng.randrange(4)}')",
            ],
            k=rng.randrange(1, 4),
        )
        predicates.append(" AND ".join(clauses))
    for predicate in predicates:
        assert_engines_agree(
            compressed,
            plain,
            f"SELECT e.id AS id, e.note AS note FROM events AS e WHERE {predicate}",
        )


# -- projection pushdown / EXPLAIN / metrics ----------------------------------


def test_explain_renders_columns_read_and_skip_metrics():
    compressed, _ = build_pair()
    sql = (
        "SELECT e.cat AS cat FROM events AS e "
        f"WHERE e.id BETWEEN 100 AND 400 AND e.cat LIKE 'cat%'"
    )
    text = compressed.explain(sql)
    assert "Columns: 2/5 read" in text, text  # cat (select) + id (filter)

    analyzed = compressed.explain(sql, analyze=True)
    assert "columns_decoded=" in analyzed, analyzed
    assert "segments_skipped=" in analyzed, analyzed
    assert "Segments: " in analyzed and " skipped" in analyzed, analyzed

    # SELECT * stays full width: no Columns line on the scan.
    star = compressed.explain("SELECT * FROM events AS e WHERE e.id < 50")
    assert "Columns:" not in star, star


def test_scan_metrics_are_engine_invariant():
    compressed, _ = build_pair()
    planned = compressed.plan(
        "SELECT e.val AS val FROM events AS e "
        "WHERE e.id BETWEEN 2000 AND 2100 AND e.phase = 'phase1'"
    )
    scan = next(
        node for node in planned.plan.walk() if isinstance(node, ScanNode)
    )
    observed = []
    for engine in (ExecutionEngine.VECTORIZED, ExecutionEngine.PARALLEL):
        execution = compressed.executor_for(engine).execute(planned.plan)
        metrics = execution.node_metrics[scan.node_id]
        observed.append((metrics.segments_skipped, metrics.columns_decoded))
    assert observed[0] == observed[1]
    skipped, decoded = observed[0]
    assert skipped and skipped > 0  # most 1024-row blocks refute the id range
    assert decoded <= len(scan.columns)


def test_partitioned_column_values_gathers_only_that_column():
    compressed, _ = build_pair()
    table = compressed.catalog.table("events")
    cat_position = table.schema.column_index("cat")
    values = table.column_values("cat")
    assert len(values) == table.row_count
    # Other compressed columns stay undecoded: one column was gathered.
    for partition in table.partitions():
        for position, _ in enumerate(table.schema.columns):
            segment = partition.segment_at(position)
            if position != cat_position and segment is not None:
                assert getattr(segment, "_decoded", None) is None
    # The per-column gather is cached (and handed out as a copy).
    again = table.column_values("cat")
    assert again == values and again is not values
    assert list(table._gathered_cols) == [cat_position]


# -- unit level: kernels and block statistics ---------------------------------


def test_dictionary_filter_null_only_segment_unit():
    segment = encode_segment([None] * 10, codec="dictionary")
    assert isinstance(segment, DictionarySegment)
    kept = _dictionary_filter(segment, lambda v: v == "x", None, 10)
    assert kept == []
    kept = _dictionary_filter(segment, lambda v: v is None, [3, 7], 10)
    assert kept == [3, 7]  # all-match shortcut: candidates pass through
    assert segment.gather([0, 9]) == [None, None]


def test_rle_filter_candidate_walk_unit():
    values = ["a"] * 5 + ["b"] * 4 + ["a"] * 3
    segment = encode_segment(values, codec="rle")
    assert isinstance(segment, RLESegment)
    assert _rle_filter(segment, lambda v: v == "a", None) == [
        *range(0, 5),
        *range(9, 12),
    ]
    assert _rle_filter(segment, lambda v: v == "b", [0, 4, 5, 8, 9, 11]) == [5, 8]


def test_block_stats_sealed_and_type_safe():
    values = list(range(BLOCK_ROWS)) + [None] * 10 + list(range(50))
    stats = compute_block_stats(values)
    assert stats[0] == (0, BLOCK_ROWS - 1, 0)
    assert stats[1] == (0, 49, 10)
    # Mixed-type blocks are uncomparable: no synopsis, never refuted.
    mixed = compute_block_stats([1, "x", 2])
    assert mixed == [None]
    segment = encode_segment(values)
    assert segment.block_stats() == stats


def test_projection_keeps_filter_and_fallback_columns():
    compressed, _ = build_pair()
    planned = compressed.plan(
        "SELECT e.note AS note FROM events AS e WHERE e.cat = 'needle'"
    )
    scan = next(
        node for node in planned.plan.walk() if isinstance(node, ScanNode)
    )
    # note (select) + cat (filter) + id (first schema column, kept for the
    # adaptive re-planner's handover fallback).
    assert scan.columns == ("id", "cat", "note")
    assert scan.columns_total == 5


@pytest.mark.parametrize("engine", ENGINES)
def test_select_star_stays_full_width(engine):
    compressed, plain = build_pair()
    planned = compressed.plan("SELECT * FROM events AS e WHERE e.id < 1200")
    scan = next(
        node for node in planned.plan.walk() if isinstance(node, ScanNode)
    )
    assert scan.columns is None
    rows = compressed.executor_for(engine).execute(planned.plan).result.rows
    assert rows == plain.run("SELECT * FROM events AS e WHERE e.id < 1200").rows
