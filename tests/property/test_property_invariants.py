"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import ColumnType, make_schema
from repro.core import q_error
from repro.engine import Database
from repro.executor import reference
from repro.executor.batch import ColumnBatch
from repro.executor.expressions import (
    ColumnResolver,
    compile_batch_conjunction,
    compile_conjunction,
    like_match,
)
from repro.executor.operators import ResultSet, join_results
from repro.optimizer.plan import JoinAlgorithm, ScanNode
from repro.sql.ast import (
    Between,
    BoolConnective,
    BoolExpr,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    column,
)
from repro.sql.binder import BoundJoin
from repro.stats import EquiDepthHistogram, MostCommonValues
from repro.workloads import ZipfSampler

positive_rows = st.floats(min_value=0, max_value=1e9, allow_nan=False)


class TestQErrorProperties:
    @given(positive_rows, positive_rows)
    def test_symmetric_and_at_least_one(self, estimated, actual):
        error = q_error(estimated, actual)
        assert error >= 1.0
        assert error == q_error(actual, estimated)

    @given(positive_rows)
    def test_identity(self, value):
        assert q_error(value, value) == 1.0


class TestHistogramProperties:
    @given(st.lists(st.integers(min_value=-10_000, max_value=10_000), min_size=2, max_size=300))
    def test_selectivity_bounded_and_monotone(self, values):
        histogram = EquiDepthHistogram.build(values, num_buckets=16)
        if histogram is None:
            return
        probes = sorted(set(values))[:: max(1, len(set(values)) // 10)]
        previous = 0.0
        for probe in probes:
            fraction = histogram.selectivity_less_than(probe)
            assert 0.0 <= fraction <= 1.0
            assert fraction >= previous - 1e-9
            previous = fraction

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=300))
    def test_full_range_covers_everything(self, values):
        histogram = EquiDepthHistogram.build(values, num_buckets=8)
        if histogram is None:
            return
        assert histogram.selectivity_range() == 1.0


class TestMCVProperties:
    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=400))
    def test_frequencies_are_probabilities(self, values):
        mcv = MostCommonValues.build(values, max_entries=8)
        assert mcv is not None
        assert 0.0 < mcv.total_frequency <= 1.0 + 1e-9
        for value, frequency in zip(mcv.values, mcv.frequencies):
            assert abs(frequency - values.count(value) / len(values)) < 1e-9
        # Frequencies are sorted most-common-first.
        assert list(mcv.frequencies) == sorted(mcv.frequencies, reverse=True)


class TestZipfProperties:
    @given(st.integers(min_value=1, max_value=500), st.floats(min_value=0.1, max_value=2.0))
    def test_probabilities_sum_to_one_and_decrease(self, n, exponent):
        sampler = ZipfSampler(n, exponent)
        probabilities = [sampler.probability(i) for i in range(n)]
        assert abs(sum(probabilities) - 1.0) < 1e-6
        assert all(
            probabilities[i] >= probabilities[i + 1] - 1e-12 for i in range(n - 1)
        )


class TestLikeProperties:
    @given(st.text(alphabet="abc%_", min_size=0, max_size=10), st.text(alphabet="abc", max_size=10))
    def test_like_never_crashes_and_is_boolean(self, pattern, value):
        assert like_match(value, pattern) in (True, False)

    @given(st.text(alphabet="abcd", max_size=12))
    def test_percent_matches_everything(self, value):
        assert like_match(value, "%")


class TestJoinProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=30)
    @given(
        st.lists(st.integers(min_value=0, max_value=8), max_size=40),
        st.lists(st.integers(min_value=0, max_value=8), max_size=40),
    )
    def test_join_cardinality_matches_key_count_product(self, left_keys, right_keys):
        """|A join B on key| == sum over keys of count_A(k) * count_B(k)."""
        left = ResultSet(
            [("a", "k")], [(key,) for key in left_keys]
        )
        right = ResultSet(
            [("b", "k")], [(key,) for key in right_keys]
        )
        joined = join_results(left, right, [BoundJoin("a", "k", "b", "k")])
        expected = sum(
            left_keys.count(key) * right_keys.count(key) for key in set(left_keys)
        )
        assert len(joined) == expected


_int_or_null = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
_text_or_null = st.one_of(st.none(), st.text(alphabet="abc", max_size=3))
_random_rows = st.lists(st.tuples(_int_or_null, _text_or_null), max_size=60)

_int_column = column("t", "a")
_text_column = column("t", "b")

_comparison = st.builds(
    lambda op, value: Comparison(op, _int_column, Literal(value)),
    st.sampled_from(list(ComparisonOp)),
    st.integers(min_value=-5, max_value=5),
)
_in = st.builds(
    lambda values, negated: InList(
        _int_column, tuple(Literal(v) for v in values), negated=negated
    ),
    st.lists(st.integers(min_value=-5, max_value=5), max_size=4),
    st.booleans(),
)
_like = st.builds(
    lambda pattern, negated: Like(_text_column, Literal(pattern), negated=negated),
    st.text(alphabet="abc%_", max_size=4),
    st.booleans(),
)
_between = st.builds(
    lambda low, high, negated: Between(
        _int_column, Literal(low), Literal(high), negated=negated
    ),
    st.integers(min_value=-5, max_value=0),
    st.integers(min_value=0, max_value=5),
    st.booleans(),
)
_null = st.builds(
    IsNull, st.sampled_from([_int_column, _text_column]), st.booleans()
)
_simple_predicate = st.one_of(_comparison, _in, _like, _between, _null)
_connective = st.sampled_from([BoolConnective.AND, BoolConnective.OR])
_predicate = st.one_of(
    _simple_predicate,
    st.builds(
        lambda op, operands: BoolExpr(op, tuple(operands)),
        _connective,
        st.lists(_simple_predicate, min_size=2, max_size=3),
    ),
    st.builds(Not, _simple_predicate),
    st.builds(
        lambda op, operands: Not(BoolExpr(op, tuple(operands))),
        _connective,
        st.lists(_simple_predicate, min_size=2, max_size=2),
    ),
)


class TestBatchPredicateProperties:
    """Batch (columnar) predicate evaluation must match per-row evaluation."""

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(_random_rows, st.lists(_predicate, max_size=3))
    def test_batch_conjunction_matches_row_conjunction(self, rows, predicates):
        columns = [("t", "a"), ("t", "b")]
        resolver = ColumnResolver(columns)
        row_predicate = compile_conjunction(predicates, resolver)
        expected = [row for row in rows if row_predicate(row)]

        batch = ColumnBatch.from_rows(columns, rows)
        batch_predicate = compile_batch_conjunction(predicates, resolver)
        if batch_predicate is None:
            survivors = batch
        else:
            survivors = batch.restrict(batch_predicate(batch))
        assert survivors.rows == expected

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(_random_rows, _predicate)
    def test_batch_predicate_survives_prior_selection(self, rows, predicate):
        """Predicates applied to an already-restricted batch stay correct."""
        columns = [("t", "a"), ("t", "b")]
        resolver = ColumnResolver(columns)
        keep_even = [i for i in range(len(rows)) if i % 2 == 0]
        batch = ColumnBatch.from_rows(columns, rows).restrict(keep_even)
        row_predicate = compile_conjunction([predicate], resolver)
        expected = [rows[i] for i in keep_even if row_predicate(rows[i])]
        batch_predicate = compile_batch_conjunction([predicate], resolver)
        assert batch.restrict(batch_predicate(batch)).rows == expected


def _join_sort_key(row):
    return tuple((value is None, value) for value in row)


class TestEngineJoinEquivalence:
    """Vectorized and reference joins agree, including NULL join keys."""

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=40)
    @given(
        st.lists(st.tuples(_int_or_null, _text_or_null), max_size=40),
        st.lists(st.tuples(_int_or_null, _int_or_null), max_size=40),
    )
    def test_vectorized_join_matches_reference(self, left_rows, right_rows):
        columns_left = [("l", "k"), ("l", "payload")]
        columns_right = [("r", "k"), ("r", "extra")]
        join = [BoundJoin("l", "k", "r", "k")]
        vectorized = join_results(
            ColumnBatch.from_rows(columns_left, left_rows),
            ColumnBatch.from_rows(columns_right, right_rows),
            join,
        )
        oracle = reference.join_results(
            ResultSet(columns_left, left_rows),
            ResultSet(columns_right, right_rows),
            join,
        )
        assert sorted(vectorized.rows, key=_join_sort_key) == sorted(
            oracle.rows, key=_join_sort_key
        )


class TestJoinAlgorithmPermutationEquality:
    """All four physical join algorithms produce the same result multiset."""

    @settings(
        suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=10
    )
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=50)),
            min_size=1,
            max_size=40,
        )
    )
    def test_all_algorithms_permutation_equal(self, trade_rows):
        db = Database()
        db.create_table(
            make_schema(
                "company",
                [("id", ColumnType.INT), ("symbol", ColumnType.TEXT)],
                primary_key="id",
            )
        )
        db.create_table(
            make_schema(
                "trades",
                [("id", ColumnType.INT), ("company_id", ColumnType.INT), ("shares", ColumnType.INT)],
                primary_key="id",
                foreign_keys=[("company_id", "company", "id")],
            )
        )
        db.load_rows("company", [(i, f"S{i}") for i in range(1, 9)])
        db.load_rows(
            "trades",
            [(i + 1, cid, shares) for i, (cid, shares) in enumerate(trade_rows)],
        )
        db.finalize_load()
        planned = db.plan(
            "SELECT c.symbol, t.id FROM company AS c, trades AS t "
            "WHERE c.id = t.company_id"
        )
        join = planned.plan.join_nodes()[0]
        results = {}
        for algorithm in JoinAlgorithm:
            if algorithm is JoinAlgorithm.INDEX_NESTED_LOOP and not isinstance(
                join.right, ScanNode
            ):
                continue
            join.algorithm = algorithm
            execution = db.execute_plan(planned)
            results[algorithm] = sorted(execution.result.rows, key=_join_sort_key)
        assert len(results) >= 3
        baseline = results[JoinAlgorithm.HASH_JOIN]
        for algorithm, rows in results.items():
            assert rows == baseline, f"{algorithm} output differs from hash join"


class TestEngineCountProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=20)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_filtered_count_matches_python(self, rows):
        """COUNT with a filter agrees with a straight Python computation."""
        db = Database()
        db.create_table(
            make_schema("facts", [("id", ColumnType.INT), ("grp", ColumnType.INT), ("val", ColumnType.INT)])
        )
        db.load_rows("facts", [(i + 1, grp, val) for i, (grp, val) in enumerate(rows)])
        db.finalize_load()
        run = db.run("SELECT count(f.id) AS n FROM facts AS f WHERE f.grp = 3")
        expected = sum(1 for grp, _ in rows if grp == 3)
        assert run.rows == [(expected,)]
