"""Random-query differential fuzzer: batch engine vs. the row oracle.

Hypothesis generates small schemas' worth of data and random queries across
the full supported grammar — joins (equi and non-equi residual) x predicate
trees (nested ``AND``/``OR``/``NOT``, arithmetic comparisons, ``NOT IN``/
``NOT LIKE``/``NOT BETWEEN``, flipped BETWEEN bounds, division by zero) x
arithmetic/CASE select lists x GROUP BY x ORDER BY x LIMIT/OFFSET x DISTINCT
x all aggregates (``MIN``/``MAX``/``COUNT``/``COUNT(*)``/``SUM``/``AVG``,
including aggregates over expressions) — renders them to SQL text, runs the
text through parse → bind → plan once, then executes the *same* physical
plan on both engines and asserts they agree on:

* the exact result rows (both engines pin row order by construction:
  probe-side-major joins, first-appearance grouping, stable sorts);
* the charged work (the engine-invariance the paper's figures rely on);
* per-node actual cardinalities.

Every plan also runs on the morsel-driven parallel engine (small morsel
size, several workers, so even the tiny fuzz tables split into multiple
morsels) and must reproduce the oracle's rows, order, work and per-node
cardinalities exactly — the merge-by-morsel-index design makes parallel
execution bit-identical to serial.  Setting ``REPRO_FUZZ_ENGINE=parallel``
additionally builds every fuzz database itself on the parallel engine, so
the serving-pipeline legs (adaptive and simulated re-optimization) execute
on it too; CI runs the fuzz step once in that mode.

Every generated query additionally runs through the serving pipeline under
operator-level adaptive execution (``adaptive=True``), the paper's
materialize-and-rewrite simulation (``adaptive=False``) and is compared
against the reference-oracle rows, at an aggressive re-optimization
threshold so re-plans actually fire on the tiny fuzz tables.  Re-planning
may change the final plan, so rows are compared as multisets — except under
ORDER BY + LIMIT, where the planner's deterministic tie-break gives the
sort a total order over the projected output and the legs must agree on the
*exact* row list; a bare LIMIT without ORDER BY only pins the row count
(which plan-valid subset survives is legitimately plan-dependent).

A checked-in regression corpus replays previously shrunk failures plus
hand-picked nasty cases so they stay pinned even in quick dev runs.  CI
runs the ``ci`` hypothesis profile (see ``tests/property/conftest.py``):
derandomized with >= 200 examples, so every PR fuzzes an identical, green
query stream.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import example, given, strategies as st

import repro
from repro.catalog import ColumnType, PartitionSpec, make_schema
from repro.core.triggers import ReoptimizationPolicy
from repro.engine import Database, ExecutionEngine
from repro.engine.settings import EngineSettings
from repro.optimizer.injection import CardinalityInjector

#: Re-plan whenever a join estimate is off by more than 2x.
FUZZ_REOPT_THRESHOLD = 2.0

#: Engine the fuzz databases themselves run on (the serving-pipeline legs);
#: CI sets ``REPRO_FUZZ_ENGINE=parallel`` for one of its fuzz invocations.
FUZZ_ENGINE = ExecutionEngine.from_name(
    os.environ.get("REPRO_FUZZ_ENGINE", "vectorized")
)

#: Partition count for the fuzz tables (0 = plain single-shard storage).
#: When set, ``groups`` is range-partitioned on ``id`` and ``records``
#: hash-partitioned on its (nullable!) ``gid``, every shard is compressed
#: after loading, and the whole differential stream — scans with zone-map
#: and routing pruning, joins, re-optimization legs — runs against the
#: partitioned storage.  CI sets ``REPRO_FUZZ_PARTITIONS=4``.
FUZZ_PARTITIONS = int(os.environ.get("REPRO_FUZZ_PARTITIONS", "0"))

#: Parallel-leg knobs: a morsel size far below the fuzz table sizes and more
#: workers than morsels on the smallest tables, so splitting, the worker
#: pool, partial-build merging and single-morsel fallbacks all get exercised.
FUZZ_PARALLEL_WORKERS = 3
FUZZ_PARALLEL_MORSEL_SIZE = 4


class UnderestimateJoins(CardinalityInjector):
    """Forces every multi-table estimate to one row (paper-style injection).

    The fuzz tables are tiny and exactly ANALYZEd, so natural estimates are
    near-perfect and re-optimization would never fire.  Injecting a wrong
    join cardinality — the paper's own experimental hook — makes every
    non-empty join cross the Q-error threshold, so the re-optimization legs
    genuinely exercise triggering, handover/rewrite and re-planning on the
    whole generated stream.
    """

    def lookup(self, query, subset):
        return 1.0 if len(subset) > 1 else None

    def describe(self) -> str:
        return "underestimate-joins"

# -- fixed fuzz schema -------------------------------------------------------

#: column name -> kind ("int" | "text"); ids double as join keys.
G_COLS: Dict[str, str] = {"id": "int", "tag": "text", "score": "int"}
R_COLS: Dict[str, str] = {"id": "int", "gid": "int", "val": "int", "label": "text"}

TEXT_VALUES = ["a", "b", "c", "ab"]
LIKE_PATTERNS = ["a%", "%b", "%a%", "a_", "%"]


def build_database(g_rows: List[tuple], r_rows: List[tuple]) -> Database:
    db = Database(
        EngineSettings(
            engine=FUZZ_ENGINE,
            workers=FUZZ_PARALLEL_WORKERS,
            morsel_size=FUZZ_PARALLEL_MORSEL_SIZE,
            # In partitioned mode a row budget far below the join fan-outs
            # forces grace hash joins and external merge sorts on every leg,
            # so the differential stream also pins spill determinism.
            memory_budget=8 if FUZZ_PARTITIONS > 1 else None,
        )
    )
    groups_partition = records_partition = None
    if FUZZ_PARTITIONS > 1:
        # Range bounds inside the generators' 1..10 id domain so several
        # shards are populated; records hash-partitions its nullable FK
        # (NULL gids route to shard 0).
        groups_partition = PartitionSpec(
            method="range",
            column="id",
            bounds=tuple(range(2, 1 + FUZZ_PARTITIONS)),
        )
        records_partition = PartitionSpec(
            method="hash", column="gid", partitions=FUZZ_PARTITIONS
        )
    db.create_table(
        make_schema(
            "groups",
            [("id", ColumnType.INT), ("tag", ColumnType.TEXT), ("score", ColumnType.INT)],
            primary_key="id",
            partition_by=groups_partition,
        )
    )
    db.create_table(
        make_schema(
            "records",
            [
                ("id", ColumnType.INT),
                ("gid", ColumnType.INT),
                ("val", ColumnType.INT),
                ("label", ColumnType.TEXT),
            ],
            primary_key="id",
            foreign_keys=[("gid", "groups", "id")],
            partition_by=records_partition,
        )
    )
    db.load_rows("groups", g_rows)
    db.load_rows("records", r_rows)
    db.finalize_load()
    if FUZZ_PARTITIONS > 1:
        # Exercise the lazy-decode path: the whole stream scans compressed
        # shards (ANALYZE above saw the plain ones; values are identical).
        db.catalog.table("groups").compress()
        db.catalog.table("records").compress()
    return db


# -- data strategies ---------------------------------------------------------

nullable_int = st.one_of(st.none(), st.integers(min_value=0, max_value=6))
nullable_text = st.one_of(st.none(), st.sampled_from(TEXT_VALUES))

g_rows_strategy = st.lists(
    st.tuples(st.just(0), nullable_text, nullable_int), min_size=0, max_size=10
).map(lambda rows: [(i + 1, tag, score) for i, (_, tag, score) in enumerate(rows)])

r_rows_strategy = st.lists(
    st.tuples(
        st.just(0),
        st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        nullable_int,
        nullable_text,
    ),
    min_size=0,
    max_size=20,
).map(
    lambda rows: [
        (i + 1, gid, val, label) for i, (_, gid, val, label) in enumerate(rows)
    ]
)


# -- query strategy ----------------------------------------------------------


def _columns_for(tables: List[Tuple[str, str]]) -> List[Tuple[str, str, str]]:
    """All (alias, column, kind) triples available to a query."""
    out = []
    for alias, table in tables:
        cols = G_COLS if table == "groups" else R_COLS
        out.extend((alias, name, kind) for name, kind in cols.items())
    return out


@st.composite
def predicate_strategy(draw, alias: str, column: str, kind: str) -> str:
    """One single-table predicate leaf rendered as SQL."""
    ref = f"{alias}.{column}"
    if kind == "text":
        template = draw(
            st.sampled_from(
                ["eq", "in", "not_in", "like", "not_like", "null", "not_null", "or"]
            )
        )
        value = draw(st.sampled_from(TEXT_VALUES))
        if template == "eq":
            return f"{ref} = '{value}'"
        if template in ("in", "not_in"):
            values = draw(
                st.lists(st.sampled_from(TEXT_VALUES), min_size=1, max_size=3)
            )
            rendered = ", ".join(f"'{v}'" for v in values)
            op = "NOT IN" if template == "not_in" else "IN"
            return f"{ref} {op} ({rendered})"
        if template == "like":
            return f"{ref} LIKE '{draw(st.sampled_from(LIKE_PATTERNS))}'"
        if template == "not_like":
            return f"{ref} NOT LIKE '{draw(st.sampled_from(LIKE_PATTERNS))}'"
        if template == "null":
            return f"{ref} IS NULL"
        if template == "not_null":
            return f"{ref} IS NOT NULL"
        return f"({ref} = '{value}' OR {ref} IS NULL)"
    template = draw(
        st.sampled_from(
            [
                "cmp",
                "arith_cmp",
                "in",
                "not_in",
                "between",
                "not_between",
                "null",
                "not_null",
                "or",
            ]
        )
    )
    value = draw(st.integers(min_value=0, max_value=7))
    if template == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return f"{ref} {op} {value}"
    if template == "arith_cmp":
        # Scalar arithmetic inside a predicate, divisor drawn from a range
        # that includes 0 so division-by-zero -> NULL keeps getting fuzzed.
        op = draw(st.sampled_from(["=", "<>", "<", ">="]))
        arith = draw(
            st.sampled_from(
                [
                    f"{ref} + {value}",
                    f"{ref} * 2 - 1",
                    f"{ref} % {draw(st.integers(min_value=0, max_value=3))}",
                    f"{ref} / {draw(st.integers(min_value=0, max_value=2))}",
                    f"-{ref}",
                ]
            )
        )
        return f"{arith} {op} {draw(st.integers(min_value=-3, max_value=9))}"
    if template in ("in", "not_in"):
        values = draw(
            st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=3)
        )
        op = "NOT IN" if template == "not_in" else "IN"
        return f"{ref} {op} ({', '.join(map(str, values))})"
    if template in ("between", "not_between"):
        # Bounds are drawn independently, so flipped (empty) ranges occur.
        low = draw(st.integers(min_value=0, max_value=8))
        high = draw(st.integers(min_value=0, max_value=8))
        op = "NOT BETWEEN" if template == "not_between" else "BETWEEN"
        return f"{ref} {op} {low} AND {high}"
    if template == "null":
        return f"{ref} IS NULL"
    if template == "not_null":
        return f"{ref} IS NOT NULL"
    return f"({ref} < {value} OR {ref} IS NULL)"


@st.composite
def boolean_tree_strategy(
    draw, columns: List[Tuple[str, str, str]], depth: int = 2
) -> str:
    """A nested AND/OR/NOT predicate tree rendered as parenthesized SQL."""
    if depth <= 0 or draw(st.integers(min_value=0, max_value=2)) == 0:
        alias, col, kind = draw(st.sampled_from(columns))
        leaf = draw(predicate_strategy(alias, col, kind))
        if draw(st.booleans()):
            return leaf
        return f"NOT ({leaf})"
    connective = draw(st.sampled_from(["AND", "OR"]))
    count = draw(st.integers(min_value=2, max_value=3))
    operands = [draw(boolean_tree_strategy(columns, depth - 1)) for _ in range(count)]
    tree = f" {connective} ".join(f"({operand})" for operand in operands)
    if draw(st.booleans()):
        return f"NOT ({tree})"
    return f"({tree})"


@st.composite
def int_expression_strategy(draw, columns: List[Tuple[str, str, str]]) -> str:
    """A scalar arithmetic expression over the int columns (select lists)."""
    ints = [(a, c) for a, c, kind in columns if kind == "int"]
    alias, col = draw(st.sampled_from(ints))
    ref = f"{alias}.{col}"
    shape = draw(st.sampled_from(["plus", "times", "mod", "div", "case", "mixed"]))
    k = draw(st.integers(min_value=0, max_value=4))
    if shape == "plus":
        return f"{ref} + {k}"
    if shape == "times":
        return f"{ref} * {k} - 1"
    if shape == "mod":
        return f"{ref} % {draw(st.integers(min_value=0, max_value=3))}"
    if shape == "div":
        return f"{ref} / {draw(st.integers(min_value=0, max_value=2))}"
    if shape == "case":
        return f"CASE WHEN {ref} > {k} THEN {ref} ELSE -{ref} END"
    other_alias, other_col = draw(st.sampled_from(ints))
    return f"({ref} + {other_alias}.{other_col}) * 2"


@st.composite
def sql_query_strategy(draw) -> str:
    """A random SELECT over the fuzz schema, rendered as SQL text."""
    shape = draw(st.sampled_from(["g", "r", "gr", "rr"]))
    if shape == "g":
        tables, joins = [("g", "groups")], []
    elif shape == "r":
        tables, joins = [("r", "records")], []
    elif shape == "gr":
        tables = [("g", "groups"), ("r", "records")]
        joins = ["r.gid = g.id"]
    else:  # self-join of records on the group key
        tables = [("r1", "records"), ("r2", "records")]
        joins = ["r1.gid = r2.gid"]
    columns = _columns_for(tables)

    mode = draw(st.sampled_from(["star", "plain", "agg", "group"]))
    select_parts: List[str] = []
    order_candidates: List[Tuple[str, bool]] = []  # (sql name, is output name)
    distinct = False
    group_refs: List[str] = []

    def aggregate_for(kind: str) -> str:
        funcs = (
            ["min", "max", "count", "sum", "avg"]
            if kind == "int"
            else ["min", "max", "count"]
        )
        return draw(st.sampled_from(funcs))

    def aggregate_argument(i: int) -> str:
        """An aggregate select item: over a column or over an expression."""
        if draw(st.booleans()):
            return f"count(*) AS a{i}"
        if draw(st.booleans()):
            alias, col, kind = draw(st.sampled_from(columns))
            return f"{aggregate_for(kind)}({alias}.{col}) AS a{i}"
        func = draw(st.sampled_from(["min", "max", "count", "sum", "avg"]))
        return f"{func}({draw(int_expression_strategy(columns))}) AS a{i}"

    if mode == "star":
        select_sql = "*"
        order_candidates = [(f"{alias}.{col}", False) for alias, col, _ in columns]
    elif mode == "plain":
        picked = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=3, unique=True)
        )
        distinct = draw(st.booleans())
        computed = False
        for i, (alias, col, _) in enumerate(picked):
            if draw(st.integers(min_value=0, max_value=3)) == 0:
                # Arithmetic in the select list (always AS-named so ORDER BY
                # can address it).
                computed = True
                select_parts.append(
                    f"{draw(int_expression_strategy(columns))} AS p{i}"
                )
                order_candidates.append((f"p{i}", True))
                continue
            named = draw(st.booleans())
            select_parts.append(
                f"{alias}.{col} AS p{i}" if named else f"{alias}.{col}"
            )
            order_candidates.append((f"p{i}", True) if named else (f"{alias}.{col}", False))
        if not distinct and not computed:
            # Plain all-column queries may also sort on non-projected base
            # columns (computed select lists must sort above the projection).
            order_candidates.extend(
                (f"{alias}.{col}", False) for alias, col, _ in columns
            )
        select_sql = ", ".join(select_parts)
    elif mode == "agg":
        num = draw(st.integers(min_value=1, max_value=3))
        for i in range(num):
            select_parts.append(aggregate_argument(i))
            order_candidates.append((f"a{i}", True))
        select_sql = ", ".join(select_parts)
    else:  # group
        keys = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=2, unique=True)
        )
        group_refs = [f"{alias}.{col}" for alias, col, _ in keys]
        for i, ref in enumerate(group_refs):
            select_parts.append(f"{ref} AS k{i}")
            order_candidates.append((f"k{i}", True))
        num_aggs = draw(st.integers(min_value=1, max_value=2))
        for i in range(num_aggs):
            select_parts.append(aggregate_argument(i))
            order_candidates.append((f"a{i}", True))
        select_sql = ", ".join(select_parts)

    predicates: List[str] = list(joins)
    if len(tables) == 2 and draw(st.integers(min_value=0, max_value=3)) == 0:
        # Non-equi join predicate: lands in the planner's residual filters.
        left_alias = tables[0][0]
        right_alias = tables[1][0]
        left_col = "score" if tables[0][1] == "groups" else "val"
        right_col = "score" if tables[1][1] == "groups" else "val"
        op = draw(st.sampled_from(["<", "<=", "<>", ">"]))
        predicates.append(
            f"{left_alias}.{left_col} {op} {right_alias}.{right_col}"
        )
    num_filters = draw(st.integers(min_value=0, max_value=2))
    for _ in range(num_filters):
        if draw(st.integers(min_value=0, max_value=2)) == 0:
            predicates.append(draw(boolean_tree_strategy(columns)))
        else:
            alias, col, kind = draw(st.sampled_from(columns))
            predicates.append(draw(predicate_strategy(alias, col, kind)))

    prefix = "SELECT DISTINCT" if distinct else "SELECT"
    sql = f"{prefix} {select_sql} FROM " + ", ".join(
        f"{table} AS {alias}" for alias, table in tables
    )
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    if group_refs:
        sql += " GROUP BY " + ", ".join(group_refs)

    if order_candidates and draw(st.booleans()):
        num_keys = draw(
            st.integers(min_value=1, max_value=min(2, len(order_candidates)))
        )
        keys = draw(
            st.lists(
                st.sampled_from(order_candidates),
                min_size=num_keys,
                max_size=num_keys,
                unique=True,
            )
        )
        rendered = [
            f"{name}{draw(st.sampled_from(['', ' ASC', ' DESC']))}"
            for name, _ in keys
        ]
        sql += " ORDER BY " + ", ".join(rendered)

    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(min_value=0, max_value=6))}"
        if draw(st.booleans()):
            sql += f" OFFSET {draw(st.integers(min_value=0, max_value=4))}"
    return sql


# -- the differential property ----------------------------------------------


def assert_engines_agree(
    g_rows: List[tuple], r_rows: List[tuple], sql: str
) -> None:
    """Plan once, execute on all three engines, require exact agreement."""
    db = build_database(g_rows, r_rows)
    planned = db.plan(sql)
    vectorized = db.executor_for(ExecutionEngine.VECTORIZED).execute(planned.plan)
    reference = db.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan)
    parallel = db.executor_for(
        ExecutionEngine.PARALLEL,
        workers=FUZZ_PARALLEL_WORKERS,
        morsel_size=FUZZ_PARALLEL_MORSEL_SIZE,
    ).execute(planned.plan)
    assert list(vectorized.result.rows) == list(reference.result.rows), sql
    assert vectorized.result.columns == reference.result.columns, sql
    assert vectorized.total_work == reference.total_work, sql
    # The parallel engine must be bit-identical to the serial engines: same
    # rows in the same order, same charged work, same per-node cardinality.
    assert list(parallel.result.rows) == list(reference.result.rows), sql
    assert parallel.result.columns == reference.result.columns, sql
    assert parallel.total_work == reference.total_work, sql
    for node_id, metrics in vectorized.node_metrics.items():
        assert (
            metrics.actual_rows == reference.node_metrics[node_id].actual_rows
        ), (sql, metrics.label)
        assert (
            metrics.actual_rows == parallel.node_metrics[node_id].actual_rows
        ), (sql, metrics.label)
    assert_reoptimization_modes_agree(db, planned, reference, sql)


def assert_reoptimization_modes_agree(
    db: Database, planned, reference, sql: str
) -> None:
    """Adaptive and simulated re-optimization reproduce the oracle's rows.

    Both modes run at :data:`FUZZ_REOPT_THRESHOLD` through the full serving
    pipeline.  Row *order* is plan-dependent once a re-plan changes the join
    order, so rows are compared as multisets — with two LIMIT refinements:

    * ORDER BY + LIMIT: the planner appends a deterministic tie-break to
      the sort whenever a LIMIT can cut into a run of key-ties, making the
      output order total over the projected row values; every leg must
      return the oracle's *exact* row list.
    * LIMIT without ORDER BY: which subset survives is legitimately
      plan-dependent, but its size is not — the legs must agree on the row
      count (the same-plan engine legs above still pin exact rows).
    """
    query = planned.query
    expected_rows = list(reference.result.rows)
    expected = Counter(expected_rows)
    policy = ReoptimizationPolicy(threshold=FUZZ_REOPT_THRESHOLD)
    injector = UnderestimateJoins()
    for adaptive in (False, True):
        with repro.connect(db, policy=policy, adaptive=adaptive) as connection:
            ctx = connection.pipeline.run(sql=sql, injector=injector)
            if query.limit is None:
                assert Counter(ctx.rows) == expected, (f"adaptive={adaptive}", sql)
            elif query.order_by:
                assert list(ctx.rows) == expected_rows, (f"adaptive={adaptive}", sql)
            else:
                assert len(ctx.rows) == len(expected_rows), (
                    f"adaptive={adaptive}",
                    sql,
                )


@given(g_rows=g_rows_strategy, r_rows=r_rows_strategy, sql=sql_query_strategy())
@example(  # all-NULL group under SUM/AVG, NULL group key
    g_rows=[(1, None, None), (2, "a", None)],
    r_rows=[],
    sql="SELECT g.tag AS k0, sum(g.score) AS a0, avg(g.score) AS a1 "
    "FROM groups AS g GROUP BY g.tag",
)
@example(  # DESC NULLS FIRST interacting with OFFSET past part of the data
    g_rows=[(1, "a", 2), (2, "b", None), (3, "c", None), (4, "a", 5)],
    r_rows=[],
    sql="SELECT g.id FROM groups AS g ORDER BY g.score DESC LIMIT 3 OFFSET 1",
)
@example(  # join fan-out + DISTINCT + sort on projected column
    g_rows=[(1, "a", 1), (2, "a", 1)],
    r_rows=[(1, 1, 4, "x"), (2, 1, 4, "x"), (3, 2, 4, "x"), (4, 9, 4, "x")],
    sql="SELECT DISTINCT g.tag AS p0 FROM groups AS g, records AS r "
    "WHERE r.gid = g.id ORDER BY p0",
)
@example(  # COUNT(*) vs COUNT(col) with NULL join keys dropped by the join
    g_rows=[(1, "a", 1)],
    r_rows=[(1, 1, None, "x"), (2, None, 3, "y"), (3, 1, 2, None)],
    sql="SELECT count(*) AS a0, count(r.val) AS a1 "
    "FROM groups AS g, records AS r WHERE r.gid = g.id",
)
@example(  # LIMIT 0 over a grouped self-join
    g_rows=[],
    r_rows=[(1, 1, 1, "a"), (2, 1, 2, "b")],
    sql="SELECT r1.gid AS k0, count(*) AS a0 FROM records AS r1, records AS r2 "
    "WHERE r1.gid = r2.gid GROUP BY r1.gid LIMIT 0",
)
def test_random_queries_agree_across_engines(g_rows, r_rows, sql):
    assert_engines_agree(g_rows, r_rows, sql)


# -- regression corpus -------------------------------------------------------

#: Shrunk failures and hand-picked nasties, kept green forever.  Each entry is
#: ``(case id, groups rows, records rows, sql)``.
REGRESSION_CORPUS: List[Tuple[str, List[tuple], List[tuple], Optional[str]]] = [
    (
        "unnamed-outputs-order-by-positional-name",
        [(1, "b", 2), (2, "a", 1)],
        [],
        "SELECT g.tag, g.score FROM groups AS g ORDER BY col0 DESC",
    ),
    (
        "group-by-key-not-projected",
        [(1, "a", 1), (2, "a", 2), (3, "b", None)],
        [],
        "SELECT count(*) AS n FROM groups AS g GROUP BY g.tag ORDER BY n DESC",
    ),
    (
        "avg-of-single-value-is-float",
        [(1, "a", 3)],
        [],
        "SELECT avg(g.score) AS a FROM groups AS g",
    ),
    (
        "distinct-star-with-duplicate-rows-via-self-join",
        [],
        [(1, 1, 1, "x"), (2, 1, 1, "x")],
        "SELECT DISTINCT r1.val FROM records AS r1, records AS r2 "
        "WHERE r1.gid = r2.gid",
    ),
    (
        "sort-below-projection-on-unprojected-column",
        [(1, "c", None), (2, "a", 4), (3, "b", 0)],
        [],
        "SELECT g.tag FROM groups AS g ORDER BY g.score DESC, g.id ASC LIMIT 2",
    ),
    (
        "empty-tables-through-every-clause",
        [],
        [],
        "SELECT g.tag AS k0, sum(r.val) AS s FROM groups AS g, records AS r "
        "WHERE r.gid = g.id GROUP BY g.tag ORDER BY s LIMIT 3 OFFSET 1",
    ),
    (
        # Found in review: the below-projection fallback used to re-resolve
        # already-matched output aliases against the base tables, sorting on
        # the shadowed column g.score instead of the aliased output g.tag.
        "order-by-alias-shadowing-base-column-with-unprojected-key",
        [(1, "b", 9), (2, "a", 1), (3, "c", 5)],
        [],
        "SELECT g.tag AS score FROM groups AS g ORDER BY score, g.id",
    ),
    (
        "offset-without-order-preserves-engine-row-order",
        [(1, "a", 1), (2, "b", 2), (3, "c", 3)],
        [(1, 1, 1, "x"), (2, 2, 2, "y"), (3, 3, 3, "z"), (4, 2, 4, "w")],
        "SELECT g.tag, r.val FROM groups AS g, records AS r "
        "WHERE r.gid = g.id LIMIT 2 OFFSET 1",
    ),
    (
        # Division by zero yields NULL (never an error), in filters and in
        # projections alike; NULL divisors propagate NULL too.
        "division-by-zero-is-null",
        [(1, "a", 0), (2, "b", 3), (3, "c", None)],
        [],
        "SELECT g.id, g.score / g.score AS q, 6 / g.score AS w "
        "FROM groups AS g ORDER BY g.id",
    ),
    (
        # NULL propagates through every arithmetic operator; comparing the
        # NULL result filters the row (three-valued logic).
        "null-propagation-through-arithmetic",
        [(1, "a", None), (2, "b", 2)],
        [],
        "SELECT g.id, g.score * 2 + 1 AS e FROM groups AS g "
        "WHERE g.score + 1 > 0 OR g.score IS NULL ORDER BY g.id",
    ),
    (
        # Flipped BETWEEN bounds (low > high) select nothing; NOT BETWEEN on
        # the same bounds keeps every non-NULL row.
        "flipped-between-bounds",
        [(1, "a", 1), (2, "b", 5), (3, "c", None)],
        [],
        "SELECT g.id FROM groups AS g WHERE g.score BETWEEN 5 AND 1",
    ),
    (
        "not-between-flipped-bounds-keeps-non-null",
        [(1, "a", 1), (2, "b", 5), (3, "c", None)],
        [],
        "SELECT g.id FROM groups AS g WHERE g.score NOT BETWEEN 5 AND 1",
    ),
    (
        # NOT over a cross-column OR tree: De Morgan pushdown must keep the
        # three-valued semantics intact on NULL-heavy data.
        "negated-boolean-tree-with-nulls",
        [(1, None, None), (2, "a", 3), (3, "b", 0)],
        [],
        "SELECT g.id FROM groups AS g "
        "WHERE NOT (g.score < 2 OR g.tag = 'a') ORDER BY g.id",
    ),
    (
        # Non-equi residual join predicate next to the equi join.
        "residual-join-filter-next-to-equi-join",
        [(1, "a", 2), (2, "b", 8)],
        [(1, 1, 5, "x"), (2, 1, 1, "y"), (3, 2, 9, "z"), (4, 2, None, "w")],
        "SELECT g.id, r.id FROM groups AS g, records AS r "
        "WHERE r.gid = g.id AND g.score < r.val ORDER BY g.id, r.id",
    ),
    (
        # Aggregates over expressions, including a zero divisor inside SUM.
        "aggregate-over-expression-with-zero-divisor",
        [(1, "a", 0), (2, "a", 2), (3, "b", 4)],
        [],
        "SELECT g.tag AS k, sum(g.score * 2) AS d, avg(4 / g.score) AS q, "
        "count(g.score / g.score) AS n FROM groups AS g GROUP BY g.tag "
        "ORDER BY k",
    ),
    (
        # CASE in the select list over a NULL-able column.
        "case-expression-projection",
        [(1, "a", None), (2, "b", 4), (3, "c", 0)],
        [],
        "SELECT g.id, CASE WHEN g.score IS NULL THEN -1 "
        "WHEN g.score > 2 THEN 1 ELSE 0 END AS bucket "
        "FROM groups AS g ORDER BY g.id",
    ),
    (
        # Sort-key ties exactly at the LIMIT cut, sort below the projection:
        # rows 1/2/4 tie on score=1, the cut takes two of them.  The planner's
        # tie-break (the projected expressions) makes the surviving tags
        # plan-independent, so the re-optimization legs agree exactly.
        "limit-cut-through-key-ties-below-projection",
        [(1, "b", 1), (2, "a", 1), (3, "c", 0), (4, "a", 1)],
        [],
        "SELECT g.tag FROM groups AS g ORDER BY g.score DESC LIMIT 2",
    ),
    (
        # SELECT * with duplicate sort keys at the cut: the tie-break is
        # every declared column in FROM-then-schema order, a total order
        # over full rows, so the cut is deterministic across plans.
        "limit-cut-through-key-ties-select-star",
        [],
        [(1, 2, 5, "x"), (2, 1, 5, "y"), (3, 1, 2, "z"), (4, 2, 5, "w")],
        "SELECT * FROM records AS r ORDER BY r.val DESC LIMIT 2",
    ),
    (
        # Output-name sort keys with duplicates at the cut: the sort sits
        # above the projection, where the tie-break is every output column
        # positionally.
        "limit-cut-through-output-key-ties",
        [(1, "a", 9), (2, "a", 3), (3, "b", 7), (4, "a", 5)],
        [],
        "SELECT g.tag AS t, g.id AS i FROM groups AS g ORDER BY t LIMIT 2",
    ),
    (
        # Join fan-out duplicates the join key the sort runs on; the star
        # tie-break must survive a mid-query rewrite of the join.
        "limit-cut-through-join-fanout-ties-star",
        [(1, "a", 1), (2, "a", 2)],
        [(1, 1, 4, "x"), (2, 1, 4, "y"), (3, 2, 4, "z"), (4, 2, 1, "w")],
        "SELECT * FROM groups AS g, records AS r WHERE r.gid = g.id "
        "ORDER BY g.tag LIMIT 3",
    ),
    (
        # OFFSET lands inside a run of key-ties, so both edges of the window
        # cut through ties.
        "limit-offset-window-inside-key-ties",
        [(1, "d", 1), (2, "c", 1), (3, "b", 1), (4, "a", 1)],
        [],
        "SELECT g.tag FROM groups AS g ORDER BY g.score LIMIT 2 OFFSET 1",
    ),
]


@pytest.mark.parametrize(
    "g_rows,r_rows,sql",
    [case[1:] for case in REGRESSION_CORPUS],
    ids=[case[0] for case in REGRESSION_CORPUS],
)
def test_regression_corpus(g_rows, r_rows, sql):
    assert_engines_agree(g_rows, r_rows, sql)


# -- seeded mis-estimate: the adaptive path must actually re-plan ------------


def test_adaptive_replans_on_seeded_misestimate():
    """A skewed self-join whose uniformity estimate is off forces a re-plan.

    ``records.val`` is 1 for 18 of 20 rows, so the optimizer's
    ``1/n_distinct`` join selectivity underestimates the self-join output
    well past the fuzz threshold; the adaptive executor must pause at the
    breaker, re-plan at least once, and still return the oracle's rows.
    """
    r_rows = [
        (i + 1, (i % 4) + 1, 1 if i < 18 else i - 16, "x") for i in range(20)
    ]
    sql = (
        "SELECT count(*) AS n FROM records AS r1, records AS r2 "
        "WHERE r1.val = r2.val"
    )
    db = build_database([], r_rows)
    expected = db.run(sql).rows

    db = build_database([], r_rows)
    policy = ReoptimizationPolicy(threshold=FUZZ_REOPT_THRESHOLD)
    with repro.connect(db, policy=policy, adaptive=True) as connection:
        cursor = connection.execute(sql)
        rows = cursor.fetchall()
        context = cursor.context
    assert rows == expected
    assert context.reoptimized
    assert len(context.report.steps) >= 1
    assert context.report.steps[0].materialize_work == 0.0
