"""Hypothesis settings profiles for the property/fuzz suites.

Three profiles keep fuzz runs reproducible:

* ``dev`` (default) — a quick run for local iteration.
* ``ci`` — the pinned profile CI uses (``HYPOTHESIS_PROFILE=ci``):
  derandomized (a fixed example stream, so every PR fuzzes the same queries)
  and large enough that the differential fuzzer replays well over 200
  generated queries per run.
* ``nightly`` — the scheduled CI job's profile: *randomized* (each night
  explores a fresh example stream) at 10x the ``ci`` example count.  The
  nightly job pins the stream with ``--hypothesis-seed=$SEED`` and prints the
  seed, so any failure reproduces locally with the same flag.

Select a profile with the ``HYPOTHESIS_PROFILE`` environment variable;
``make fuzz`` runs the ``ci`` profile.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

_COMMON = dict(
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)

settings.register_profile("dev", max_examples=60, **_COMMON)
settings.register_profile("ci", max_examples=220, derandomize=True, **_COMMON)
settings.register_profile(
    "nightly", max_examples=2200, derandomize=False, print_blob=True, **_COMMON
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
