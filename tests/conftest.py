"""Shared fixtures for the test suite.

Expensive fixtures (the synthetic IMDB database, the bench context) are
session-scoped; tests must treat them as read-only.  Tests that need to
mutate a database build their own via the ``*_factory`` fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import ColumnType, make_schema
from repro.bench.harness import build_context
from repro.engine import Database
from repro.workloads import (
    ImdbConfig,
    JobWorkloadConfig,
    build_imdb_database,
    generate_job_workload,
)

TEST_SCALE = 0.15
TEST_SEED = 42


def build_stock_like_database(num_companies: int = 150, num_trades: int = 4000, seed: int = 0) -> Database:
    """A small two-table database with join-key skew (used by many unit tests)."""
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        make_schema(
            "company",
            [("id", ColumnType.INT), ("symbol", ColumnType.TEXT), ("sector", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "trades",
            [
                ("id", ColumnType.INT),
                ("company_id", ColumnType.INT),
                ("shares", ColumnType.INT),
                ("venue", ColumnType.TEXT),
            ],
            primary_key="id",
            foreign_keys=[("company_id", "company", "id")],
        )
    )
    sectors = ["tech", "energy", "health", "finance"]
    db.load_rows(
        "company",
        [(i + 1, f"SYM{i + 1}", sectors[i % len(sectors)]) for i in range(num_companies)],
    )
    rows = []
    for i in range(num_trades):
        company_id = 1 if rng.random() < 0.35 else rng.randint(2, num_companies)
        rows.append((i + 1, company_id, rng.randint(1, 5000), "NYSE" if rng.random() < 0.7 else "NASDAQ"))
    db.load_rows("trades", rows)
    db.finalize_load()
    return db


@pytest.fixture
def stock_db() -> Database:
    """Fresh skewed two-table database (mutable per test)."""
    return build_stock_like_database()


@pytest.fixture(scope="session")
def shared_stock_db() -> Database:
    """Session-wide skewed two-table database (treat as read-only)."""
    return build_stock_like_database()


@pytest.fixture(scope="session")
def imdb_db_and_dataset():
    """Session-wide small synthetic IMDB database (treat as read-only)."""
    return build_imdb_database(ImdbConfig(scale=TEST_SCALE, seed=TEST_SEED))


@pytest.fixture(scope="session")
def imdb_db(imdb_db_and_dataset):
    """The loaded IMDB database."""
    return imdb_db_and_dataset[0]


@pytest.fixture(scope="session")
def imdb_dataset(imdb_db_and_dataset):
    """The generated IMDB dataset object."""
    return imdb_db_and_dataset[1]


@pytest.fixture(scope="session")
def job_queries(imdb_dataset):
    """The full 113-query workload (SQL text level)."""
    return generate_job_workload(imdb_dataset.vocabulary, JobWorkloadConfig(seed=7))


@pytest.fixture(scope="session")
def bench_context():
    """A small bench context over the first 24 workload queries."""
    return build_context(scale=TEST_SCALE, seed=TEST_SEED, query_limit=24)
