"""Unit tests for equi-depth histograms."""

from repro.stats import EquiDepthHistogram


class TestBuild:
    def test_requires_enough_values(self):
        assert EquiDepthHistogram.build([]) is None
        assert EquiDepthHistogram.build([1]) is None
        assert EquiDepthHistogram.build([5, 5, 5]) is None

    def test_bounds_are_sorted(self):
        histogram = EquiDepthHistogram.build(list(range(100, 0, -1)), num_buckets=10)
        assert list(histogram.bounds) == sorted(histogram.bounds)
        assert histogram.low == 1
        assert histogram.high == 100

    def test_nulls_ignored(self):
        histogram = EquiDepthHistogram.build([None, 1, 2, 3, None, 4])
        assert histogram.low == 1
        assert histogram.high == 4

    def test_bucket_count_capped_by_distinct_values(self):
        histogram = EquiDepthHistogram.build([1, 2, 3, 4] * 10, num_buckets=100)
        assert histogram.num_buckets <= 3


class TestSelectivity:
    def test_uniform_range(self):
        histogram = EquiDepthHistogram.build(list(range(1, 1001)), num_buckets=100)
        # P(value < 500) should be close to 0.5 for uniform data.
        assert abs(histogram.selectivity_less_than(500) - 0.5) < 0.05

    def test_out_of_range(self):
        histogram = EquiDepthHistogram.build(list(range(1, 101)))
        assert histogram.selectivity_less_than(0) == 0.0
        assert histogram.selectivity_less_than(1000) == 1.0

    def test_range_selectivity(self):
        histogram = EquiDepthHistogram.build(list(range(1, 1001)), num_buckets=50)
        sel = histogram.selectivity_range(low=250, high=750)
        assert abs(sel - 0.5) < 0.06

    def test_open_ranges(self):
        histogram = EquiDepthHistogram.build(list(range(1, 101)))
        assert histogram.selectivity_range() == 1.0
        assert abs(
            histogram.selectivity_range(low=50)
            + histogram.selectivity_range(high=50)
            - 1.0
        ) < 0.05

    def test_skewed_data(self):
        # 90% of the data is the value 1; the histogram should reflect that
        # most mass is below 2.
        values = [1] * 900 + list(range(2, 102))
        histogram = EquiDepthHistogram.build(values, num_buckets=20)
        assert histogram.selectivity_less_than(2) > 0.6

    def test_text_histogram(self):
        values = [f"k{i:03d}" for i in range(200)]
        histogram = EquiDepthHistogram.build(values, num_buckets=10)
        assert 0.0 <= histogram.selectivity_less_than("k100") <= 1.0

    def test_monotonic(self):
        histogram = EquiDepthHistogram.build(list(range(1, 500)), num_buckets=25)
        previous = 0.0
        for value in range(0, 520, 20):
            current = histogram.selectivity_less_than(value)
            assert current >= previous - 1e-9
            previous = current
