"""Operator-level adaptive execution: correctness, accounting, cache/epoch.

The scenario is a deliberately mis-estimated self-join: ``records.val`` is
heavily skewed (90 of 100 rows share one value), so the optimizer's
uniformity assumption underestimates the join output by ~9x and the adaptive
executor pauses at the hash-join pipeline breaker to re-plan the remainder
with the observed true cardinality.
"""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.catalog import ColumnType, make_schema
from repro.core.triggers import ReoptimizationPolicy
from repro.engine import Database, EngineSettings, ExecutionEngine
from repro.executor.adaptive import AdaptiveExecutor


SELF_JOIN_COUNT = (
    "SELECT count(*) AS n FROM records AS r1, records AS r2 "
    "WHERE r1.val = r2.val"
)
SELF_JOIN_STAR = (
    "SELECT * FROM records AS r1, records AS r2 WHERE r1.val = r2.val"
)
SELF_JOIN_GROUPED = (
    "SELECT r1.val AS v, count(*) AS n FROM records AS r1, records AS r2 "
    "WHERE r1.val = r2.val GROUP BY r1.val ORDER BY n DESC"
)


def build_skew_database(settings=None) -> Database:
    """100-row table whose ``val`` column is 90% one value (q-error ~9)."""
    db = Database(settings)
    db.create_table(
        make_schema(
            "records",
            [
                ("id", ColumnType.INT),
                ("gid", ColumnType.INT),
                ("val", ColumnType.INT),
                ("label", ColumnType.TEXT),
            ],
            primary_key="id",
        )
    )
    rows = []
    for i in range(100):
        val = 1 if i < 90 else (i - 88)
        rows.append((i + 1, i % 7, val, "x" if i % 2 else "y"))
    db.load_rows("records", rows)
    db.finalize_load()
    return db


def adaptive_policy(threshold: float = 4.0) -> ReoptimizationPolicy:
    return ReoptimizationPolicy(threshold=threshold)


class TestAdaptiveExecutor:
    def test_replans_once_and_matches_plain_rows(self):
        db = build_skew_database()
        plain = db.run(SELF_JOIN_COUNT).rows

        db2 = build_skew_database()
        planned = db2.plan(SELF_JOIN_COUNT)
        execution = AdaptiveExecutor(db2, adaptive_policy()).execute(planned)
        assert execution.replanned
        assert len(execution.replans) == 1
        assert execution.result.rows == plain
        point = execution.replans[0]
        assert point.q_error > 4.0
        assert point.actual_rows == point.pseudo_rows

    def test_no_replan_below_threshold(self):
        db = build_skew_database()
        plain = db.run(SELF_JOIN_COUNT).rows
        planned = db.plan(SELF_JOIN_COUNT)
        execution = AdaptiveExecutor(
            db, adaptive_policy(threshold=1000.0)
        ).execute(planned)
        assert not execution.replanned
        assert execution.result.rows == plain

    def test_star_query_output_shape_restored(self):
        db = build_skew_database()
        plain = db.run(SELF_JOIN_STAR)

        db2 = build_skew_database()
        planned = db2.plan(SELF_JOIN_STAR)
        execution = AdaptiveExecutor(db2, adaptive_policy()).execute(planned)
        assert execution.replanned
        # Re-planning is invisible to the client: original qualified column
        # names in the original order, and the same row multiset.
        assert tuple(execution.result.columns) == tuple(plain.execution.result.columns)
        assert Counter(execution.result.rows) == Counter(plain.rows)

    def test_grouped_query_matches_plain_rows(self):
        db = build_skew_database()
        plain = db.run(SELF_JOIN_GROUPED).rows
        db2 = build_skew_database()
        planned = db2.plan(SELF_JOIN_GROUPED)
        execution = AdaptiveExecutor(db2, adaptive_policy()).execute(planned)
        assert execution.replanned
        assert execution.result.rows == plain

    def test_reference_engine_runs_adaptively(self):
        settings = EngineSettings(engine=ExecutionEngine.REFERENCE)
        db = build_skew_database(settings)
        plain = db.run(SELF_JOIN_COUNT).rows
        planned = db.plan(SELF_JOIN_COUNT)
        execution = AdaptiveExecutor(db, adaptive_policy()).execute(planned)
        assert execution.replanned
        assert execution.engine is ExecutionEngine.REFERENCE
        assert execution.result.rows == plain

    def test_replanned_remainder_uses_observed_cardinality(self):
        db = build_skew_database()
        planned = db.plan(SELF_JOIN_COUNT)
        execution = AdaptiveExecutor(db, adaptive_policy()).execute(planned)
        assert execution.replanned
        point = execution.replans[0]
        # The remainder's scan of the pseudo-table is planned with the exact
        # observed cardinality, not a statistical estimate.
        scans = [
            node
            for node in execution.final_planned.plan.walk()
            if node.label().startswith("Seq Scan on " + point.pseudo_table)
        ]
        assert scans and scans[0].estimated_rows == point.actual_rows

    def test_pseudo_tables_dropped_and_epoch_stable(self):
        db = build_skew_database()
        epoch_before = db.catalog.epoch
        planned = db.plan(SELF_JOIN_COUNT)
        execution = AdaptiveExecutor(db, adaptive_policy()).execute(planned)
        assert execution.replanned
        assert db.catalog.table_names() == ["records"]
        assert db.catalog.epoch == epoch_before

    def test_cheaper_than_materialize_and_rewrite_simulation(self):
        policy = adaptive_policy()
        db = build_skew_database()
        with repro.connect(db, policy=policy, adaptive=False) as conn:
            simulated = conn.execute(SELF_JOIN_COUNT).context
        db2 = build_skew_database()
        with repro.connect(db2, policy=policy, adaptive=True) as conn:
            adaptive = conn.execute(SELF_JOIN_COUNT).context
        assert simulated.reoptimized and adaptive.reoptimized
        assert adaptive.rows == simulated.rows
        # No materialization surcharge and no re-scan of the intermediate
        # from storage: the in-executor loop is strictly cheaper.
        assert adaptive.execution_seconds < simulated.execution_seconds

    def test_max_iterations_respected(self):
        db = build_skew_database()
        planned = db.plan(SELF_JOIN_COUNT)
        policy = ReoptimizationPolicy(threshold=4.0, max_iterations=1)
        execution = AdaptiveExecutor(db, policy).execute(planned)
        assert len(execution.replans) <= 1
        assert execution.result.rows == build_skew_database().run(SELF_JOIN_COUNT).rows

    def test_short_query_cutoff_disables_adaptivity(self):
        db = build_skew_database()
        planned = db.plan(SELF_JOIN_COUNT)
        policy = ReoptimizationPolicy(threshold=4.0, min_query_seconds=1e9)
        execution = AdaptiveExecutor(db, policy).execute(planned)
        assert not execution.replanned


class TestAdaptiveConnection:
    def test_cursor_report_and_explain(self):
        db = build_skew_database()
        conn = repro.connect(
            db, policy=adaptive_policy(), adaptive=True, capture_explain=True
        )
        cursor = conn.execute(SELF_JOIN_COUNT)
        ctx = cursor.context
        assert ctx.reoptimized
        assert len(ctx.report.steps) == 1
        step = ctx.report.steps[0]
        assert step.materialize_work == 0.0
        assert "in memory" in step.create_sql
        text = cursor.explain_text
        assert "Re-plan points:" in text
        assert "[in-memory intermediate]" in text
        assert "q_error=" in text
        assert "batches=" in text

    def test_settings_flag_enables_adaptive(self):
        settings = EngineSettings(adaptive=True)
        db = build_skew_database(settings)
        conn = repro.connect(db, policy=adaptive_policy())
        ctx = conn.execute(SELF_JOIN_COUNT).context
        assert ctx.reoptimized
        assert ctx.report.steps[0].materialize_work == 0.0

    def test_metrics_interceptor_accounts_adaptive_statements(self):
        db = build_skew_database()
        conn = repro.connect(db, policy=adaptive_policy(), adaptive=True)
        conn.execute(SELF_JOIN_COUNT)
        assert conn.metrics.statements == 1
        assert conn.metrics.reoptimized_statements == 1
        assert conn.metrics.execution_seconds > 0.0


class TestPlanCacheEpochInteraction:
    def test_replan_does_not_poison_cache_for_original_sql(self):
        db = build_skew_database()
        conn = repro.connect(db, policy=adaptive_policy(), adaptive=True)
        first = conn.execute(SELF_JOIN_COUNT)
        rows_first = first.fetchall()
        assert first.context.reoptimized
        assert conn.cache_stats.misses == 1 and conn.cache_stats.hits == 0

        second = conn.execute(SELF_JOIN_COUNT)
        rows_second = second.fetchall()
        # The second run is served from the cache with the *original* plan
        # (not the re-planned remainder), re-plans again, and returns the
        # same rows.
        assert conn.cache_stats.hits == 1
        assert second.context.plan_cached
        assert second.context.reoptimized
        assert rows_second == rows_first

    def test_adaptive_execution_leaves_epoch_alone(self):
        db = build_skew_database()
        conn = repro.connect(db, policy=adaptive_policy(), adaptive=True)
        epoch_before = db.catalog.epoch
        assert conn.execute(SELF_JOIN_COUNT).context.reoptimized
        assert db.catalog.epoch == epoch_before

    def test_analyze_mid_stream_bumps_epoch_and_invalidates(self):
        db = build_skew_database()
        conn = repro.connect(db, policy=adaptive_policy(), adaptive=True)
        conn.execute(SELF_JOIN_COUNT)
        epoch_before = db.catalog.epoch
        conn.analyze()
        assert db.catalog.epoch > epoch_before
        conn.execute(SELF_JOIN_COUNT)
        # ANALYZE invalidated the cached plan: a fresh miss, no stale hit.
        assert conn.cache_stats.misses == 2
        assert conn.cache_stats.hits == 0

    def test_legacy_simulation_handles_star_queries(self):
        # The SQL-rewrite simulation restores SELECT * output shape via the
        # same provenance projection the adaptive path uses: original
        # qualified column names, original order, same row multiset.
        db = build_skew_database()
        plain = db.run(SELF_JOIN_STAR)
        db2 = build_skew_database()
        with repro.connect(db2, policy=adaptive_policy(), adaptive=False) as conn:
            cursor = conn.execute(SELF_JOIN_STAR)
            assert cursor.context.reoptimized
            assert tuple(cursor.context.execution.result.columns) == tuple(
                plain.execution.result.columns
            )
            assert Counter(cursor.fetchall()) == Counter(plain.rows)


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
