"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiments


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig1", "table45", "ablation-midquery"):
            assert key in out

    def test_run_requires_experiments(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiments(["nope"])


class TestRun:
    def test_run_table45_without_context(self, capsys):
        results = run_experiments(["table45"])
        assert len(results) == 1
        assert results[0].experiment_id == "table45"

    def test_run_table3_small_context(self, capsys):
        results = run_experiments(["table3"], scale=0.1, query_limit=10)
        assert results[0].experiment_id == "table3"
        out = capsys.readouterr().out
        assert "num_tables" in out

    def test_main_with_output_file(self, tmp_path, capsys):
        output = tmp_path / "artifact.txt"
        code = main(
            [
                "run",
                "table45",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert "q_error" in output.read_text()

    def test_registry_complete(self):
        # Every paper artifact has a CLI entry.
        for required in ("fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
                         "table1", "table2", "table3", "table45", "table6"):
            assert required in EXPERIMENTS


class TestSqlCommand:
    def test_execute_statements_over_connection(self, capsys):
        code = main(
            [
                "sql",
                "--scale",
                "0.05",
                "-e",
                "SELECT count(t.id) AS n FROM title AS t",
                "-e",
                "SELECT count(t.id) AS n FROM title AS t",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n" in out
        # The repeated statement was served from the plan cache.
        assert "cached plan" in out
        assert "plan cache 1 hit(s)" in out
        assert "served 2 statement(s)" in out

    def test_stdin_repl_statements(self, capsys, monkeypatch):
        import io

        stdin = io.StringIO("SELECT count(t.id) AS n FROM title AS t;\n")
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["sql", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 1 statement(s)" in out

    def test_stdin_splits_and_flushes_statements(self, capsys, monkeypatch):
        import io

        # Two statements on one line plus a trailing one without ';' — all
        # three must be served.
        stdin = io.StringIO(
            "SELECT count(t.id) AS n FROM title AS t; "
            "SELECT count(kt.id) AS n FROM kind_type AS kt;\n"
            "SELECT count(t.id) AS n FROM title AS t\n"
        )
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["sql", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 3 statement(s)" in out

    def test_bad_statement_reports_error(self, capsys):
        code = main(["sql", "--scale", "0.05", "-e", "SELECT nope FROM nowhere"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_repl_serves_grouped_ordered_limited_statements(self, capsys, monkeypatch):
        import io

        stdin = io.StringIO(
            "SELECT t.kind_id, count(*) AS n, min(t.production_year) AS first_year "
            "FROM title AS t GROUP BY t.kind_id ORDER BY n DESC LIMIT 3;\n"
            "SELECT DISTINCT kt.kind FROM kind_type AS kt ORDER BY kt.kind;\n"
        )
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["sql", "--scale", "0.05", "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2 statement(s)" in out
        # Column header row of the grouped statement.
        assert "t.kind_id  n  first_year" in out
        # EXPLAIN of the grouped statement shows the new plan nodes.
        assert "HashAggregate (keys: t.kind_id)" in out
        assert "Sort (n DESC)" in out
        assert "Limit 3" in out
        assert "Distinct" in out

    def test_repl_reports_parse_error_with_position(self, capsys):
        code = main(
            ["sql", "--scale", "0.05", "-e", "SELECT t.id LIMIT 5 FROM title AS t"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "LIMIT must come after the FROM clause" in err
        assert "at offset 12" in err
