"""Unit tests for cardinality injection hooks."""

from repro.optimizer import ChainInjection, DictInjection, NoInjection, PerfectInjection


class FakeQuery:
    aliases = ["a", "b", "c"]
    name = "fake"


class TestNoInjection:
    def test_always_none(self):
        injector = NoInjection()
        assert injector.lookup(FakeQuery(), frozenset({"a"})) is None
        assert injector.describe() == "default-estimates"


class TestDictInjection:
    def test_set_get_remove(self):
        injector = DictInjection()
        injector.set({"a", "b"}, 42)
        assert injector.lookup(FakeQuery(), frozenset({"a", "b"})) == 42.0
        assert frozenset({"a", "b"}) in injector
        assert len(injector) == 1
        injector.remove({"a", "b"})
        assert injector.lookup(FakeQuery(), frozenset({"a", "b"})) is None

    def test_constructor_values(self):
        injector = DictInjection({frozenset({"a"}): 7})
        assert injector.lookup(FakeQuery(), frozenset({"a"})) == 7.0
        assert "1 subsets" in injector.describe()


class TestPerfectInjection:
    def test_respects_max_tables(self):
        calls = []

        def oracle(query, subset):
            calls.append(subset)
            return 100.0

        injector = PerfectInjection(oracle, max_tables=2)
        assert injector.lookup(FakeQuery(), frozenset({"a"})) == 100.0
        assert injector.lookup(FakeQuery(), frozenset({"a", "b"})) == 100.0
        assert injector.lookup(FakeQuery(), frozenset({"a", "b", "c"})) is None
        assert len(calls) == 2
        assert injector.describe() == "perfect-(2)"

    def test_zero_tables_disables(self):
        injector = PerfectInjection(lambda q, s: 1.0, max_tables=0)
        assert injector.lookup(FakeQuery(), frozenset({"a"})) is None


class TestChainInjection:
    def test_first_answer_wins(self):
        first = DictInjection({frozenset({"a"}): 1})
        second = DictInjection({frozenset({"a"}): 2, frozenset({"b"}): 3})
        chain = ChainInjection([first, second])
        assert chain.lookup(FakeQuery(), frozenset({"a"})) == 1.0
        assert chain.lookup(FakeQuery(), frozenset({"b"})) == 3.0
        assert chain.lookup(FakeQuery(), frozenset({"c"})) is None
        assert "+" in chain.describe()
