"""Spill-to-disk under a memory budget: bit-identical to in-memory execution."""

from __future__ import annotations

import os

import pytest

import repro.executor.spilling as spilling_module
from repro.catalog.schema import ColumnType, make_schema
from repro.engine import Database
from repro.engine.settings import EngineSettings
from repro.executor.executor import ExecutionEngine
from repro.workloads.stocks import StocksConfig, build_stocks_database

#: A join plus a sort, both far larger than the tiny budget below.
STOCKS_SQL = (
    "SELECT c.symbol AS s, t.shares AS n FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id AND t.shares > 9000 "
    "ORDER BY t.shares DESC, t.id LIMIT 50"
)

SMALL_STOCKS = StocksConfig(num_companies=200, num_trades=3000)


def test_grace_hash_join_and_external_sort_match_in_memory():
    db = build_stocks_database(SMALL_STOCKS)
    planned = db.plan(STOCKS_SQL)
    in_memory = db.executor.execute(planned.plan)

    spilling = db.executor_for(ExecutionEngine.VECTORIZED, memory_budget=64)
    spilled = spilling.execute(planned.plan)

    # Bit-identical: same rows in the same order, same charged work, same
    # observed per-node cardinalities.
    assert spilled.result.rows == in_memory.result.rows
    assert spilled.result.columns == in_memory.result.columns
    assert spilled.total_work == in_memory.total_work
    for node_id, metrics in in_memory.node_metrics.items():
        assert spilled.node_metrics[node_id].actual_rows == metrics.actual_rows

    ops = spilling._ops
    assert ops.spilled_joins >= 1, "expected the join build side to spill"
    assert ops.spilled_sorts >= 1, "expected the sort to spill"
    # Every spill directory is gone by the time the operator returned.
    assert ops.spill_dirs
    assert all(not os.path.exists(path) for path in ops.spill_dirs)


def test_spilling_wraps_every_engine():
    db = build_stocks_database(SMALL_STOCKS)
    planned = db.plan(STOCKS_SQL)
    expected = db.executor.execute(planned.plan).result.rows
    for engine in (
        ExecutionEngine.VECTORIZED,
        ExecutionEngine.REFERENCE,
        ExecutionEngine.PARALLEL,
    ):
        executor = db.executor_for(engine, memory_budget=64)
        execution = executor.execute(planned.plan)
        assert execution.result.rows == expected, engine
        assert executor._ops.spilled_joins >= 1, engine


def test_memory_budget_via_engine_settings():
    db = build_stocks_database(
        SMALL_STOCKS, settings=EngineSettings(memory_budget=64)
    )
    rows = db.run(STOCKS_SQL).rows
    baseline = build_stocks_database(SMALL_STOCKS).run(STOCKS_SQL).rows
    assert rows == baseline
    assert db.executor._ops.spilled_joins >= 1


def test_external_sort_orders_nulls_and_descending_like_in_memory():
    def build(budget):
        db = Database(EngineSettings(memory_budget=budget))
        db.create_table(make_schema("t", [("id", ColumnType.INT), ("v", ColumnType.INT)]))
        db.load_rows(
            "t",
            [(i, None if i % 5 == 0 else (i * 7) % 13) for i in range(200)],
        )
        db.finalize_load()
        return db

    sql = "SELECT t.id, t.v FROM t AS t ORDER BY t.v DESC LIMIT 30"
    spilled_db = build(budget=16)
    rows = spilled_db.run(sql).rows
    assert rows == build(budget=None).run(sql).rows
    assert spilled_db.executor._ops.spilled_sorts >= 1


def test_under_budget_queries_never_spill():
    db = build_stocks_database(
        SMALL_STOCKS, settings=EngineSettings(memory_budget=10**9)
    )
    db.run(STOCKS_SQL)
    assert db.executor._ops.spilled_joins == 0
    assert db.executor._ops.spilled_sorts == 0
    assert db.executor._ops.spill_dirs == []


def test_spill_dirs_removed_when_join_fails_mid_spill(monkeypatch):
    db = build_stocks_database(SMALL_STOCKS)
    planned = db.plan(STOCKS_SQL)
    spilling = db.executor_for(ExecutionEngine.VECTORIZED, memory_budget=64)

    # Blow up partway through bucketing the join inputs, after spill files
    # have already been opened and written to.
    calls = {"n": 0}
    real_hash = spilling_module.stable_hash

    def exploding_hash(value):
        calls["n"] += 1
        if calls["n"] > 50:
            raise RuntimeError("disk on fire")
        return real_hash(value)

    monkeypatch.setattr(spilling_module, "stable_hash", exploding_hash)
    with pytest.raises(RuntimeError, match="disk on fire"):
        spilling.execute(planned.plan)

    ops = spilling._ops
    assert ops.spilled_joins >= 1
    assert ops.spill_dirs, "the join must have created its spill directory"
    assert all(not os.path.exists(path) for path in ops.spill_dirs)


def test_spill_dirs_removed_when_sort_fails_mid_spill(monkeypatch):
    db = build_stocks_database(SMALL_STOCKS)
    planned = db.plan(STOCKS_SQL)
    spilling = db.executor_for(ExecutionEngine.VECTORIZED, memory_budget=64)

    # Let the join spill complete, then fail while writing a sort run file.
    def exploding_write_run(path, run):
        raise RuntimeError("run file torn")

    monkeypatch.setattr(spilling_module, "write_run", exploding_write_run)
    with pytest.raises(RuntimeError, match="run file torn"):
        spilling.execute(planned.plan)

    ops = spilling._ops
    assert ops.spilled_sorts >= 1
    # Both the completed join spill and the failed sort spill are cleaned up.
    assert len(ops.spill_dirs) >= 2
    assert all(not os.path.exists(path) for path in ops.spill_dirs)
