"""Unit tests for the workload generators (distributions, IMDB, JOB, stocks)."""

import random

import pytest

from repro.workloads import (
    EXPECTED_TABLE_COUNTS,
    ImdbConfig,
    JobWorkloadConfig,
    StocksConfig,
    WeightedSampler,
    ZipfSampler,
    build_stocks_database,
    example_query,
    generate_imdb_dataset,
    generate_job_workload,
    generate_stocks_rows,
    imdb_schemas,
    table_count_distribution,
)


class TestDistributions:
    def test_zipf_head_heavier_than_tail(self):
        sampler = ZipfSampler(100, 1.0)
        rng = random.Random(1)
        draws = sampler.sample_many(rng, 5000)
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 90)
        assert head > 3 * tail
        assert abs(sum(sampler.probability(i) for i in range(100)) - 1.0) < 1e-9

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_weighted_sampler(self):
        sampler = WeightedSampler(["a", "b"], [9, 1])
        rng = random.Random(2)
        draws = [sampler.sample(rng) for _ in range(1000)]
        assert draws.count("a") > 700
        with pytest.raises(ValueError):
            WeightedSampler([], [])


class TestImdbGenerator:
    def test_deterministic(self):
        first = generate_imdb_dataset(ImdbConfig(scale=0.05, seed=3))
        second = generate_imdb_dataset(ImdbConfig(scale=0.05, seed=3))
        assert first.tables["title"] == second.tables["title"]
        assert first.tables["cast_info"] == second.tables["cast_info"]

    def test_schema_and_tables_align(self, imdb_dataset):
        schema_names = {schema.name for schema in imdb_schemas()}
        assert set(imdb_dataset.tables) == schema_names
        assert imdb_dataset.total_rows() > 5000

    def test_foreign_keys_valid(self, imdb_dataset):
        movie_ids = {row[0] for row in imdb_dataset.tables["title"]}
        keyword_ids = {row[0] for row in imdb_dataset.tables["keyword"]}
        for row in imdb_dataset.tables["movie_keyword"]:
            assert row[1] in movie_ids
            assert row[2] in keyword_ids
        person_ids = {row[0] for row in imdb_dataset.tables["name"]}
        for row in imdb_dataset.tables["cast_info"]:
            assert row[1] in person_ids
            assert row[2] in movie_ids

    def test_fanout_caps_respected(self, imdb_dataset):
        config = imdb_dataset.config
        counts = {}
        for row in imdb_dataset.tables["cast_info"]:
            counts[row[2]] = counts.get(row[2], 0) + 1
        assert max(counts.values()) <= config.max_cast_per_movie

    def test_skew_present(self, imdb_dataset):
        counts = {}
        for row in imdb_dataset.tables["movie_keyword"]:
            counts[row[1]] = counts.get(row[1], 0) + 1
        values = sorted(counts.values(), reverse=True)
        average = sum(values) / len(values)
        assert values[0] >= 3 * average

    def test_popular_keywords_in_vocabulary(self, imdb_dataset):
        assert "superhero" in imdb_dataset.vocabulary.popular_keywords
        keyword_texts = {row[1] for row in imdb_dataset.tables["keyword"]}
        assert set(imdb_dataset.vocabulary.popular_keywords) <= keyword_texts

    def test_loaded_database_analyzed(self, imdb_db):
        assert imdb_db.catalog.stats("title") is not None
        assert "movie_id" in imdb_db.catalog.indexes("movie_keyword")


class TestJobWorkload:
    def test_distribution_matches_table3(self, job_queries):
        assert len(job_queries) == 113
        assert table_count_distribution(job_queries) == EXPECTED_TABLE_COUNTS

    def test_names_unique(self, job_queries):
        names = [q.name for q in job_queries]
        assert len(names) == len(set(names))

    def test_queries_parse_and_bind(self, imdb_db, job_queries):
        for job in job_queries[::10]:
            bound = imdb_db.parse(job.sql, name=job.name)
            assert bound.num_tables() == job.num_tables
            assert len(bound.joins) >= job.num_tables - 1

    def test_every_query_has_a_filter(self, job_queries):
        assert all("WHERE" in q.sql for q in job_queries)

    def test_deterministic_generation(self, imdb_dataset):
        first = generate_job_workload(imdb_dataset.vocabulary, JobWorkloadConfig(seed=7))
        second = generate_job_workload(imdb_dataset.vocabulary, JobWorkloadConfig(seed=7))
        assert [q.sql for q in first] == [q.sql for q in second]

    def test_redundant_fact_joins_flag(self, imdb_dataset):
        with_redundant = generate_job_workload(
            imdb_dataset.vocabulary, JobWorkloadConfig(seed=7, redundant_fact_joins=True)
        )
        without = generate_job_workload(
            imdb_dataset.vocabulary, JobWorkloadConfig(seed=7)
        )
        assert len(with_redundant[20].sql) >= len(without[20].sql)


class TestStocks:
    def test_skewed_volume(self):
        config = StocksConfig(num_companies=500, num_trades=5000)
        companies, trades = generate_stocks_rows(config)
        assert len(companies) == 500
        assert len(trades) == 5000
        counts = {}
        for _, company_id, _ in trades:
            counts[company_id] = counts.get(company_id, 0) + 1
        top = sorted(counts.values(), reverse=True)[:25]
        assert sum(top) > 0.3 * len(trades)

    def test_database_and_example_query(self):
        db = build_stocks_database(StocksConfig(num_companies=200, num_trades=2000))
        run = db.run(example_query("APPL"))
        assert run.rows[0][0] > 0
        assert "APPL" in example_query("APPL")
