"""Unit tests for the cost model and plan node helpers."""

import pytest

from repro.optimizer import CostModel, CostParameters
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    JoinAlgorithm,
    JoinNode,
    ScanNode,
    count_nodes,
    plan_depth,
)
from repro.sql.binder import BoundJoin


@pytest.fixture
def cost_model(stock_db):
    return CostModel(stock_db.catalog, CostParameters())


class TestCostModel:
    def test_seq_scan_scales_with_rows(self, cost_model):
        small = cost_model.seq_scan_cost("company", 150, 1)
        large = cost_model.seq_scan_cost("trades", 4000, 1)
        assert large > small

    def test_index_scan_cheaper_for_selective_lookup(self, cost_model):
        seq = cost_model.seq_scan_cost("trades", 4000, 1)
        index = cost_model.index_scan_cost("trades", 5, 0)
        assert index < seq

    def test_nested_loop_grows_quadratically(self, cost_model):
        small = cost_model.nested_loop_cost(10, 10, 10)
        large = cost_model.nested_loop_cost(1000, 1000, 10)
        assert large > 1000 * small / 10

    def test_hash_join_linear(self, cost_model):
        base = cost_model.hash_join_cost(1000, 1000, 1000)
        double = cost_model.hash_join_cost(2000, 2000, 2000)
        assert 1.5 * base < double < 3 * base

    def test_index_nested_loop_dominated_by_probes(self, cost_model):
        few_probes = cost_model.index_nested_loop_cost(10, 10, 0)
        many_probes = cost_model.index_nested_loop_cost(100000, 10, 0)
        assert many_probes > 1000 * few_probes / 10

    def test_merge_join_includes_sort(self, cost_model):
        with_sort = cost_model.merge_join_cost(10000, 10000, 10)
        hash_cost = cost_model.hash_join_cost(10000, 10000, 10)
        assert with_sort > hash_cost

    def test_materialize_and_aggregate_positive(self, cost_model):
        assert cost_model.materialize_cost(1000, 3) > 0
        assert cost_model.aggregate_cost(1000, 2) > 0

    def test_table_pages(self, cost_model):
        assert cost_model.table_pages("trades") >= cost_model.table_pages("company")


def _scan(alias, table):
    return ScanNode(alias=alias, table=table, filters=(), access_path=AccessPath.SEQ_SCAN)


class TestPlanNodes:
    def test_scan_aliases_and_label(self):
        scan = _scan("c", "company")
        assert scan.aliases == frozenset({"c"})
        assert "company" in scan.label()

    def test_join_aliases_union(self):
        join = JoinNode(
            left=_scan("c", "company"),
            right=_scan("t", "trades"),
            join_predicates=(BoundJoin("c", "id", "t", "company_id"),),
            algorithm=JoinAlgorithm.HASH_JOIN,
        )
        assert join.aliases == frozenset({"c", "t"})
        assert "Hash Join" in join.label()

    def test_walk_and_counts(self):
        join = JoinNode(
            left=_scan("c", "company"),
            right=_scan("t", "trades"),
            join_predicates=(BoundJoin("c", "id", "t", "company_id"),),
        )
        root = AggregateNode(child=join, select_items=())
        assert count_nodes(root) == 4
        assert plan_depth(root) == 3
        assert [type(node).__name__ for node in root.walk()][0] == "AggregateNode"

    def test_join_nodes_bottom_up(self):
        inner = JoinNode(
            left=_scan("a", "company"),
            right=_scan("b", "trades"),
            join_predicates=(BoundJoin("a", "id", "b", "company_id"),),
        )
        outer = JoinNode(
            left=inner,
            right=_scan("c", "company"),
            join_predicates=(BoundJoin("b", "company_id", "c", "id"),),
        )
        ordered = outer.join_nodes()
        assert [len(node.aliases) for node in ordered] == [2, 3]

    def test_node_ids_unique(self):
        nodes = [_scan(f"a{i}", "company") for i in range(5)]
        assert len({node.node_id for node in nodes}) == 5
