"""Integration tests: the whole stack on the synthetic IMDB workload."""

from repro.core import (
    ReoptimizationInterceptor,
    ReoptimizationPolicy,
    TrueCardinalityOracle,
    q_error,
)
from repro.engine import QueryPipeline, connect
from repro.executor import explain_plan


class TestWorkloadEndToEnd:
    def test_sample_of_queries_runs_correctly(self, imdb_db, job_queries):
        """A slice of the workload plans, executes and aggregates without error."""
        for job in job_queries[::9]:
            run = imdb_db.run(imdb_db.parse(job.sql, name=job.name))
            assert len(run.rows) == 1, job.name
            assert run.execution_seconds >= 0

    def test_perfect_estimates_never_worse_by_much(self, imdb_db, job_queries):
        """Plans built from true cardinalities are not significantly slower."""
        oracle = TrueCardinalityOracle(imdb_db)
        worse = 0
        checked = 0
        for job in job_queries[:12]:
            query = imdb_db.parse(job.sql, name=job.name)
            default_run = imdb_db.run(query)
            perfect_run = imdb_db.run(query, injector=oracle.perfect_injection(17))
            assert perfect_run.rows == default_run.rows
            checked += 1
            if perfect_run.execution_seconds > default_run.execution_seconds * 1.3:
                worse += 1
            oracle.release_intermediates(query)
        assert checked == 12
        assert worse <= 2

    def test_reoptimization_preserves_results_and_helps_bad_queries(
        self, imdb_db, job_queries
    ):
        pipeline = QueryPipeline(
            imdb_db,
            [ReoptimizationInterceptor(ReoptimizationPolicy(threshold=32))],
        )
        improvements = []
        for job in job_queries[10:30:4]:
            query = imdb_db.parse(job.sql, name=job.name)
            baseline = imdb_db.run(query)
            report = pipeline.run(bound=query).report
            assert report.rows == baseline.rows, job.name
            if report.reoptimized:
                improvements.append(
                    baseline.execution_seconds - report.execution_seconds
                )
        # Whenever re-optimization fired on this slice, it did not blow up the
        # aggregate execution time.
        if improvements:
            assert sum(improvements) > -1.0

    def test_explain_analyze_shows_estimation_errors(self, imdb_db, job_queries):
        job = next(q for q in job_queries if q.num_tables >= 7)
        query = imdb_db.parse(job.sql, name=job.name)
        planned = imdb_db.plan(query)
        execution = imdb_db.execute_plan(planned)
        text = explain_plan(planned.plan, execution)
        assert "actual_rows" in text
        errors = [
            q_error(node.estimated_rows, node.actual_rows)
            for node in planned.plan.join_nodes()
        ]
        assert max(errors) >= 1.0

    def test_connection_over_workload_slice(self, imdb_db, job_queries):
        conn = connect(
            imdb_db, policy=ReoptimizationPolicy(threshold=32), plan_cache_size=0
        )
        for job in job_queries[:5]:
            context = conn.run_bound(imdb_db.parse(job.sql, name=job.name))
            assert len(context.rows) == 1
        assert conn.metrics.statements == 5
