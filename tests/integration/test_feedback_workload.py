"""Integration: feedback-seeded planning across repeated workloads and serving.

* Run 2 of a repeated workload under ``estimator="feedback"`` re-plans less
  than run 1 — the harvested cardinalities from run 1 replace the
  independence model exactly where it was wrong.
* The threaded server's sessions share the base database's feedback store
  (snapshots reuse it), and concurrent writers invalidate it through the
  same epoch-bumping paths without corrupting in-flight statements.
"""

from __future__ import annotations

import threading

from repro.catalog import ColumnType, make_schema
from repro.core import ReoptimizationPolicy
from repro.engine import Database, connect
from repro.server import Server


class TestRepeatedWorkloadReplans:
    def test_feedback_reduces_replans_on_second_run(self, imdb_db, job_queries):
        saved = imdb_db.settings.estimator
        imdb_db.set_estimator("feedback")
        imdb_db.feedback.clear()
        try:
            # Plan cache off: every run must actually re-plan to benefit.
            conn = connect(
                imdb_db,
                policy=ReoptimizationPolicy(threshold=8),
                plan_cache_size=0,
            )
            names = [q for q in job_queries if q.num_tables >= 4][:10]
            replans = []
            for _ in (1, 2):
                total = 0
                for job in names:
                    context = conn.run_bound(imdb_db.parse(job.sql, name=job.name))
                    total += len(context.report.steps)
                replans.append(total)
            assert replans[0] > 0, "run 1 must exercise the re-plan loop"
            assert replans[1] < replans[0]
        finally:
            imdb_db.set_estimator(saved)
            imdb_db.feedback.clear()

    def test_stats_strategy_is_deterministic_across_runs(self, imdb_db, job_queries):
        conn = connect(
            imdb_db, policy=ReoptimizationPolicy(threshold=8), plan_cache_size=0
        )
        job = next(q for q in job_queries if q.num_tables >= 4)
        runs = [
            len(conn.run_bound(imdb_db.parse(job.sql, name=job.name)).report.steps)
            for _ in (1, 2)
        ]
        assert runs[0] == runs[1]


def _events_db() -> Database:
    db = Database()
    db.create_table(
        make_schema(
            "events",
            [("id", ColumnType.INT), ("grp", ColumnType.INT), ("flag", ColumnType.INT)],
        )
    )
    db.load_rows("events", [(i, i % 10, 1) for i in range(200)])
    db.finalize_load()
    return db


class TestServerSharedFeedback:
    SQL = "SELECT count(e.id) AS n FROM events AS e WHERE e.grp = 3"

    def test_sessions_harvest_into_base_store(self):
        db = _events_db()
        with Server(db, workers=2) as server:
            server.execute(self.SQL)
        assert len(db.feedback) > 0
        bound = db.parse(self.SQL, name="probe")
        assert db.feedback.lookup(bound, frozenset(["e"])) is not None

    def test_epoch_bumps_race_with_serving(self):
        """Writers invalidating feedback mid-serve never corrupt statements."""
        db = _events_db()
        errors = []
        with Server(db, workers=4) as server:
            barrier = threading.Barrier(3)

            def reader() -> None:
                try:
                    barrier.wait()
                    for _ in range(25):
                        result = server.execute(self.SQL)
                        assert result.rowcount == 1
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            def writer() -> None:
                try:
                    barrier.wait()
                    for i in range(25):
                        db.load_rows("events", [(1000 + i, 3, 1)])
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader),
                threading.Thread(target=reader),
                threading.Thread(target=writer),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            # One more statement after the writes settle: its harvest records
            # the current truth, which a lookup must now return verbatim.
            server.execute(self.SQL)
        bound = db.parse(self.SQL, name="post-race")
        actual = sum(1 for row in db.catalog.table("events").iter_rows() if row[1] == 3)
        assert db.feedback.lookup(bound, frozenset(["e"])) == actual
