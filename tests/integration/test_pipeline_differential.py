"""Differential checks: the Connection path vs the bare pipeline surfaces.

The api-redesign acceptance criteria:

* the paper's numbers are identical through the serving surface — a one-off
  ``QueryPipeline`` with just the re-optimization interceptor and a
  re-optimizing ``Connection`` agree on planning/execution accounting and
  rows for the bundled workload queries;
* the plain ``Database.run`` path and a non-caching Connection agree;
* a ``PreparedStatement`` with ``?`` parameters returns the same rows as the
  equivalent literal SQL for **every** bundled workload query, and a second
  execution of the same prepared statement hits the plan cache.
"""

import pytest

from repro.core import ReoptimizationInterceptor, ReoptimizationPolicy
from repro.engine import QueryPipeline, connect
from repro.sql import parameterize


class TestConnectionMatchesDatabaseRun:
    def test_plain_path_identical(self, imdb_db, job_queries):
        connection = connect(imdb_db, reoptimize=False, plan_cache_size=0)
        for job in job_queries[::7]:
            bound = imdb_db.parse(job.sql, name=job.name)
            old = imdb_db.run(bound)
            context = connection.run_bound(bound)
            assert context.rows == old.rows, job.name
            assert context.planning_seconds == old.planning_seconds, job.name
            assert context.execution_seconds == old.execution_seconds, job.name


class TestBarePipelineMatchesConnection:
    def test_reoptimized_accounting_identical(self, imdb_db, job_queries):
        pipeline = QueryPipeline(
            imdb_db,
            [ReoptimizationInterceptor(ReoptimizationPolicy(threshold=32))],
        )
        connection = connect(
            imdb_db, policy=ReoptimizationPolicy(threshold=32), plan_cache_size=0
        )
        reoptimized = 0
        for job in job_queries[5:45:4]:
            bound = imdb_db.parse(job.sql, name=job.name)
            old = pipeline.run(bound=bound).report
            cursor = connection.execute(job.sql)
            context = cursor.context
            assert cursor.fetchall() == old.rows, job.name
            assert context.planning_seconds == pytest.approx(
                old.planning_seconds, rel=1e-12
            ), job.name
            assert context.execution_seconds == pytest.approx(
                old.execution_seconds, rel=1e-12
            ), job.name
            assert context.reoptimized == old.reoptimized, job.name
            reoptimized += int(old.reoptimized)
        # The slice must exercise the re-optimization loop, not just bypass it.
        assert reoptimized > 0


class TestPreparedMatchesLiteral:
    def test_every_workload_query(self, imdb_db, job_queries):
        """?-parameterized execution matches literal SQL for all 113 queries."""
        connection = connect(imdb_db, reoptimize=False, plan_cache_size=256)
        literal_connection = connect(imdb_db, reoptimize=False, plan_cache_size=0)
        for job in job_queries:
            bound = imdb_db.parse(job.sql, name=job.name)
            template, values = parameterize(bound)
            statement = connection.prepare(template.to_sql(), name=job.name)
            assert statement.param_count == len(values), job.name
            literal_rows = literal_connection.execute(job.sql).fetchall()
            cold = statement.execute(values)
            assert cold.fetchall() == literal_rows, job.name
            warm = statement.execute(values)
            assert warm.context.plan_cached, job.name
            assert warm.fetchall() == literal_rows, job.name
        assert connection.cache_stats.hits >= len(job_queries)
