"""Integration tests for the experiment functions on a reduced context.

The full-scale numbers live in the benchmarks; here we only check that every
experiment function produces a well-formed artifact and that the headline
orderings hold on a small workload slice.
"""

import pytest

from repro.bench.experiments import (
    figure1,
    figure2,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
    table2,
    table3,
    table45,
    table6,
)


@pytest.fixture(scope="module")
def ctx(bench_context):
    return bench_context


class TestExperimentArtifacts:
    def test_table1(self, ctx):
        result = table1(ctx)
        assert result.column("tables_in_join")[0] == 1
        assert sum(result.column("num_estimates")) > 0

    def test_table3(self, ctx):
        result = table3(ctx)
        assert sum(result.column("num_queries")) == len(ctx.job_queries)

    def test_fig1_top5(self, ctx):
        result = figure1(ctx, top=5)
        labels = result.column("regime")
        assert labels[0] == "PostgreSQL" and labels[-1] == "Perfect"
        assert len(result.metadata["query_names"]) == 5

    def test_fig2_reduced_ns(self, ctx):
        result = figure2(ctx, ns=[0, 2, 17])
        assert result.column("perfect_n") == [0, 2, 17]
        execs = result.column("execute_s")
        assert execs[-1] <= execs[0]

    def test_table2_and_table6(self, ctx):
        before = table2(ctx)
        after = table6(ctx)
        assert sum(before.column("num_queries")) == len(ctx.job_queries)
        assert sum(after.column("num_queries")) == len(ctx.job_queries)
        assert after.column("num_queries")[-1] <= before.column("num_queries")[-1]

    def test_fig5_single_query(self, ctx):
        result = figure5(ctx, query_names=[ctx.query_names()[3]], max_iterations=12)
        assert len(result.rows) >= 1

    def test_fig6(self, ctx):
        result = figure6(ctx)
        assert "rewritten_sql" in result.metadata

    def test_fig7_reduced(self, ctx):
        result = figure7(ctx, thresholds=[8, 512])
        keys = result.column("threshold")
        assert keys == [8, 512, "PG", "Perfect"]

    def test_fig8_reduced(self, ctx):
        result = figure8(ctx, ns=[0, 17])
        rows = {row[0]: row for row in result.rows}
        assert rows[0][2] <= rows[0][1] * 1.05

    def test_fig9(self, ctx):
        result = figure9(ctx)
        totals = result.metadata["totals"]
        assert totals["perfect"] <= totals["postgres"]
        assert len(result.rows) == len(ctx.job_queries)

    def test_table45(self):
        from repro.workloads import StocksConfig

        result = table45(StocksConfig(num_companies=300, num_trades=3000))
        assert len(result.rows) == 5
        assert max(result.column("q_error")) > 1.0
