"""Unit tests for the programmatic query builder and the collapse rewrite."""

import pytest

from repro.errors import BindError
from repro.sql import (
    AggregateFunc,
    Comparison,
    ComparisonOp,
    Literal,
    QueryBuilder,
    collapse_aliases,
    column,
    referenced_columns,
)


def build_three_table_query():
    builder = QueryBuilder(name="demo")
    builder.add_table("keyword", "k").add_table("movie_keyword", "mk").add_table("title", "t")
    builder.add_select("t", "title", aggregate=AggregateFunc.MIN, output_name="movie_title")
    builder.add_filter(
        "k", Comparison(ComparisonOp.EQ, column("k", "keyword"), Literal("superhero"))
    )
    builder.add_join("k", "id", "mk", "keyword_id")
    builder.add_join("mk", "movie_id", "t", "id")
    return builder.build()


class TestQueryBuilder:
    def test_builds_bound_query(self):
        query = build_three_table_query()
        assert query.aliases == ["k", "mk", "t"]
        assert query.table_for("mk") == "movie_keyword"
        assert len(query.joins) == 2
        assert len(query.filters_for("k")) == 1

    def test_duplicate_alias_rejected(self):
        builder = QueryBuilder()
        builder.add_table("title", "t")
        with pytest.raises(BindError):
            builder.add_table("name", "t")

    def test_unknown_alias_rejected(self):
        builder = QueryBuilder()
        builder.add_table("title", "t")
        with pytest.raises(BindError):
            builder.add_select("x", "title")
        with pytest.raises(BindError):
            builder.add_join("t", "id", "x", "movie_id")

    def test_self_join_rejected(self):
        builder = QueryBuilder()
        builder.add_table("title", "t")
        with pytest.raises(BindError):
            builder.add_join("t", "id", "t", "id")

    def test_shaping_clauses_carried_into_bound_query(self):
        query = (
            QueryBuilder(name="shaped")
            .add_table("company", "c")
            .add_select("c", "sector", output_name="s")
            .set_distinct()
            .add_order_by("", "s", ascending=False)
            .set_limit(3, offset=1)
            .build()
        )
        assert query.distinct
        assert [(k.alias, k.column, k.ascending) for k in query.order_by] == [
            ("", "s", False)
        ]
        assert (query.limit, query.offset) == (3, 1)

    def test_mixed_order_by_keys_rejected_at_planning(self, stock_db):
        # SQL text can never produce mixed output/base sort keys (the binder
        # normalizes them), but the builder accepts both forms; the planner
        # must reject the mix instead of crashing inside the executor.
        from repro.errors import PlanningError

        query = (
            QueryBuilder(name="mixed")
            .add_table("company", "c")
            .add_select("c", "symbol", output_name="x")
            .add_order_by("", "x")
            .add_order_by("c", "id")
            .build()
        )
        with pytest.raises(PlanningError, match="mixes both"):
            stock_db.plan(query)

    def test_grouped_query_with_base_sort_keys_rejected_at_planning(self, stock_db):
        from repro.errors import PlanningError
        from repro.sql import AggregateFunc

        query = (
            QueryBuilder(name="grouped-base-sort")
            .add_table("company", "c")
            .add_select("c", "sector")
            .add_select("c", "id", aggregate=AggregateFunc.COUNT, output_name="n")
            .add_group_by("c", "sector")
            .add_order_by("c", "id")
            .build()
        )
        with pytest.raises(PlanningError, match="only ORDER BY output columns"):
            stock_db.plan(query)

    def test_builder_sum_over_text_rejected_at_planning(self, stock_db):
        # The binder's type check only covers SQL text; the planner must stop
        # hand-built queries before the engines diverge on text arithmetic.
        from repro.errors import PlanningError
        from repro.sql import AggregateFunc

        query = (
            QueryBuilder(name="sum-text")
            .add_table("company", "c")
            .add_select("c", "symbol", aggregate=AggregateFunc.SUM, output_name="s")
            .build()
        )
        with pytest.raises(PlanningError, match="not defined for text column"):
            stock_db.plan(query)

    def test_sum_star_rejected_at_planning(self, stock_db):
        from repro.errors import PlanningError
        from repro.sql import AggregateFunc, SelectItem

        query = QueryBuilder(name="sum-star").add_table("company", "c").build()
        query.select_items.append(
            SelectItem(expr=None, aggregate=AggregateFunc.SUM, output_name="s")
        )
        with pytest.raises(PlanningError, match=r"SUM\(\*\) is not defined"):
            stock_db.plan(query)

    def test_ungrouped_aggregate_with_base_sort_keys_rejected(self, stock_db):
        from repro.errors import PlanningError
        from repro.sql import AggregateFunc

        query = (
            QueryBuilder(name="agg-base-sort")
            .add_table("company", "c")
            .add_select("c", "id", aggregate=AggregateFunc.SUM, output_name="s")
            .add_order_by("c", "id")
            .build()
        )
        with pytest.raises(PlanningError, match="aggregate queries can only"):
            stock_db.plan(query)

    def test_distinct_with_base_sort_keys_rejected_at_planning(self, stock_db):
        from repro.errors import PlanningError

        query = (
            QueryBuilder(name="distinct-base-sort")
            .add_table("company", "c")
            .add_select("c", "sector")
            .set_distinct()
            .add_order_by("c", "id")
            .build()
        )
        with pytest.raises(PlanningError, match="SELECT DISTINCT can only"):
            stock_db.plan(query)

    def test_offset_without_limit_rejected_at_planning(self, stock_db):
        from repro.errors import PlanningError

        query = (
            QueryBuilder(name="offset-only")
            .add_table("company", "c")
            .add_select("c", "id")
            .build()
        )
        query.offset = 5
        with pytest.raises(PlanningError, match="OFFSET requires a LIMIT"):
            stock_db.plan(query)


class TestReferencedColumns:
    def test_select_and_boundary_joins(self):
        query = build_three_table_query()
        needed = referenced_columns(query, ["k", "mk"])
        # mk.movie_id joins to t outside the group; the select list does not
        # reference k or mk, so only the boundary join column is needed.
        assert needed == [("mk", "movie_id")]

    def test_select_columns_included(self):
        query = build_three_table_query()
        needed = referenced_columns(query, ["t"])
        assert ("t", "title") in needed
        assert ("t", "id") in needed


class TestCollapseAliases:
    def test_collapse_two_aliases(self):
        query = build_three_table_query()
        rewritten = collapse_aliases(
            query,
            ["k", "mk"],
            temp_table="temp1",
            temp_alias="temp1",
            column_mapping={("mk", "movie_id"): "mk_movie_id"},
        )
        assert rewritten.aliases == ["t", "temp1"]
        assert rewritten.table_for("temp1") == "temp1"
        assert len(rewritten.joins) == 1
        join = rewritten.joins[0]
        assert {join.left_alias, join.right_alias} == {"t", "temp1"}
        assert join.column_for("temp1") == "mk_movie_id"
        # Filters on collapsed aliases disappear (they are baked into the temp table).
        assert rewritten.filters == {}

    def test_missing_mapping_rejected(self):
        query = build_three_table_query()
        with pytest.raises(BindError):
            collapse_aliases(query, ["k", "mk"], "temp1", "temp1", column_mapping={})

    def test_unknown_alias_rejected(self):
        query = build_three_table_query()
        with pytest.raises(BindError):
            collapse_aliases(query, ["zz"], "temp1", "temp1", column_mapping={})

    def test_original_query_untouched(self):
        query = build_three_table_query()
        collapse_aliases(
            query,
            ["k", "mk"],
            temp_table="temp1",
            temp_alias="temp1",
            column_mapping={("mk", "movie_id"): "mk_movie_id"},
        )
        assert query.aliases == ["k", "mk", "t"]
        assert len(query.joins) == 2
