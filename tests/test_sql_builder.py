"""Unit tests for the programmatic query builder and the collapse rewrite."""

import pytest

from repro.errors import BindError
from repro.sql import (
    AggregateFunc,
    ComparisonOp,
    ComparisonPredicate,
    ColumnRef,
    QueryBuilder,
    collapse_aliases,
    referenced_columns,
)


def build_three_table_query():
    builder = QueryBuilder(name="demo")
    builder.add_table("keyword", "k").add_table("movie_keyword", "mk").add_table("title", "t")
    builder.add_select("t", "title", aggregate=AggregateFunc.MIN, output_name="movie_title")
    builder.add_filter(
        "k", ComparisonPredicate(ColumnRef("k", "keyword"), ComparisonOp.EQ, "superhero")
    )
    builder.add_join("k", "id", "mk", "keyword_id")
    builder.add_join("mk", "movie_id", "t", "id")
    return builder.build()


class TestQueryBuilder:
    def test_builds_bound_query(self):
        query = build_three_table_query()
        assert query.aliases == ["k", "mk", "t"]
        assert query.table_for("mk") == "movie_keyword"
        assert len(query.joins) == 2
        assert len(query.filters_for("k")) == 1

    def test_duplicate_alias_rejected(self):
        builder = QueryBuilder()
        builder.add_table("title", "t")
        with pytest.raises(BindError):
            builder.add_table("name", "t")

    def test_unknown_alias_rejected(self):
        builder = QueryBuilder()
        builder.add_table("title", "t")
        with pytest.raises(BindError):
            builder.add_select("x", "title")
        with pytest.raises(BindError):
            builder.add_join("t", "id", "x", "movie_id")

    def test_self_join_rejected(self):
        builder = QueryBuilder()
        builder.add_table("title", "t")
        with pytest.raises(BindError):
            builder.add_join("t", "id", "t", "id")


class TestReferencedColumns:
    def test_select_and_boundary_joins(self):
        query = build_three_table_query()
        needed = referenced_columns(query, ["k", "mk"])
        # mk.movie_id joins to t outside the group; the select list does not
        # reference k or mk, so only the boundary join column is needed.
        assert needed == [("mk", "movie_id")]

    def test_select_columns_included(self):
        query = build_three_table_query()
        needed = referenced_columns(query, ["t"])
        assert ("t", "title") in needed
        assert ("t", "id") in needed


class TestCollapseAliases:
    def test_collapse_two_aliases(self):
        query = build_three_table_query()
        rewritten = collapse_aliases(
            query,
            ["k", "mk"],
            temp_table="temp1",
            temp_alias="temp1",
            column_mapping={("mk", "movie_id"): "mk_movie_id"},
        )
        assert rewritten.aliases == ["t", "temp1"]
        assert rewritten.table_for("temp1") == "temp1"
        assert len(rewritten.joins) == 1
        join = rewritten.joins[0]
        assert {join.left_alias, join.right_alias} == {"t", "temp1"}
        assert join.column_for("temp1") == "mk_movie_id"
        # Filters on collapsed aliases disappear (they are baked into the temp table).
        assert rewritten.filters == {}

    def test_missing_mapping_rejected(self):
        query = build_three_table_query()
        with pytest.raises(BindError):
            collapse_aliases(query, ["k", "mk"], "temp1", "temp1", column_mapping={})

    def test_unknown_alias_rejected(self):
        query = build_three_table_query()
        with pytest.raises(BindError):
            collapse_aliases(query, ["zz"], "temp1", "temp1", column_mapping={})

    def test_original_query_untouched(self):
        query = build_three_table_query()
        collapse_aliases(
            query,
            ["k", "mk"],
            temp_table="temp1",
            temp_alias="temp1",
            column_mapping={("mk", "movie_id"): "mk_movie_id"},
        )
        assert query.aliases == ["k", "mk", "t"]
        assert len(query.joins) == 2
