"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql import Token, TokenType, tokenize


def token_values(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = token_values("SELECT select SeLeCt")
        assert tokens == [(TokenType.KEYWORD, "select")] * 3

    def test_identifiers_preserve_case(self):
        tokens = token_values("movie_Keyword t1")
        assert tokens == [
            (TokenType.IDENTIFIER, "movie_Keyword"),
            (TokenType.IDENTIFIER, "t1"),
        ]

    def test_numbers(self):
        # ``-`` is always the operator token; the parser folds unary minus
        # over number literals, so ``x-7`` and ``x - 7`` parse identically.
        tokens = token_values("42 3.14 -7")
        assert tokens == [
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "3.14"),
            (TokenType.OPERATOR, "-"),
            (TokenType.NUMBER, "7"),
        ]

    def test_arithmetic_operators(self):
        tokens = token_values("a + b - c / d % e * f")
        assert (TokenType.OPERATOR, "+") in tokens
        assert (TokenType.OPERATOR, "-") in tokens
        assert (TokenType.OPERATOR, "/") in tokens
        assert (TokenType.OPERATOR, "%") in tokens
        assert (TokenType.STAR, "*") in tokens

    def test_strings_with_escaped_quote(self):
        tokens = token_values("'it''s fine'")
        assert tokens == [(TokenType.STRING, "it's fine")]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_operators(self):
        tokens = token_values("= <> != < <= > >=")
        values = [v for _, v in tokens]
        assert values == ["=", "<>", "<>", "<", "<=", ">", ">="]

    def test_punctuation(self):
        types = [t for t, _ in token_values("( ) , . * ;")]
        assert types == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.STAR,
            TokenType.SEMICOLON,
        ]

    def test_comments_skipped(self):
        tokens = token_values("SELECT -- a comment\n1")
        assert tokens == [(TokenType.KEYWORD, "select"), (TokenType.NUMBER, "1")]

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")

    def test_eof_token_present(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF

    def test_matches_keyword_helper(self):
        token = tokenize("FROM")[0]
        assert token.matches_keyword("from")
        assert not token.matches_keyword("select")
        assert isinstance(token, Token)
