"""Unit tests for the persistent cardinality-feedback store and its keys."""

import json
import threading

from repro.optimizer.feedback import FeedbackStore, subset_key, subset_tables
from repro.sql import parameterize
from repro.sql.params import bind_parameters

SKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
)


class TestSubsetKey:
    def test_key_uses_tables_not_alias_spellings(self, stock_db):
        """Two spellings of the same query normalize to the same keys."""
        a = stock_db.parse(SKEWED_SQL, name="a")
        b = stock_db.parse(
            "SELECT count(tr.id) AS n FROM company AS co, trades AS tr "
            "WHERE co.symbol = 'SYM1' AND co.id = tr.company_id",
            name="b",
        )
        assert subset_key(a, frozenset(["c"])) == subset_key(b, frozenset(["co"]))
        assert subset_key(a, frozenset(["c", "t"])) == subset_key(
            b, frozenset(["co", "tr"])
        )

    def test_same_alias_different_tables_do_not_collide(self, stock_db):
        """The alias-subset keys of raw provenance collide; normalized keys don't."""
        company = stock_db.parse(
            "SELECT count(x.id) AS n FROM company AS x", name="company"
        )
        trades = stock_db.parse(
            "SELECT count(x.id) AS n FROM trades AS x", name="trades"
        )
        assert subset_key(company, frozenset(["x"])) != subset_key(
            trades, frozenset(["x"])
        )

    def test_different_filters_produce_different_keys(self, stock_db):
        sym1 = stock_db.parse(SKEWED_SQL, name="sym1")
        sym2 = stock_db.parse(SKEWED_SQL.replace("SYM1", "SYM2"), name="sym2")
        assert subset_key(sym1, frozenset(["c"])) != subset_key(
            sym2, frozenset(["c"])
        )

    def test_parameterized_statement_round_trips_to_same_key(self, stock_db):
        """Regression (satellite): ``?``-bound and literal statements must
        normalize to identical keys, or a prepared workload never hits the
        feedback learned from literal statements (and vice versa)."""
        literal = stock_db.parse(SKEWED_SQL, name="literal")
        template, values = parameterize(literal)
        assert values, "the statement must actually carry parameters"
        bound = bind_parameters(template, values)
        for subset in (frozenset(["c"]), frozenset(["t"]), frozenset(["c", "t"])):
            assert subset_key(literal, subset) == subset_key(bound, subset), subset

    def test_subset_tables(self, stock_db):
        query = stock_db.parse(SKEWED_SQL, name="tables")
        assert subset_tables(query, ["c", "t"]) == frozenset(["company", "trades"])


class TestFeedbackStoreLifecycle:
    def test_record_lookup_and_lru_bound(self, stock_db):
        store = FeedbackStore(capacity=2)
        q = stock_db.parse(SKEWED_SQL, name="lru")
        c, t, ct = frozenset(["c"]), frozenset(["t"]), frozenset(["c", "t"])
        store.record(q, c, 10.0)
        store.record(q, t, 20.0)
        assert store.lookup(q, c) == 10.0  # refreshes recency
        store.record(q, ct, 30.0)  # evicts the LRU entry (t)
        assert len(store) == 2
        assert store.lookup(q, t) is None
        assert store.lookup(q, c) == 10.0
        assert store.lookup(q, ct) == 30.0
        assert store.stats.inserts == 3
        assert store.stats.misses == 1

    def test_invalidation_by_table(self, stock_db):
        store = FeedbackStore()
        q = stock_db.parse(SKEWED_SQL, name="invalidate")
        store.record(q, frozenset(["c"]), 5.0)
        store.record(q, frozenset(["t"]), 7.0)
        store.record(q, frozenset(["c", "t"]), 9.0)
        store.invalidate_table("company")
        # Entries touching company are stale; the trades-only entry survives.
        assert store.lookup(q, frozenset(["c"])) is None
        assert store.lookup(q, frozenset(["c", "t"])) is None
        assert store.lookup(q, frozenset(["t"])) == 7.0
        assert store.stats.invalidations == 2

    def test_database_writes_invalidate(self, stock_db):
        q = stock_db.parse(SKEWED_SQL, name="write")
        stock_db.feedback.record(q, frozenset(["t"]), 11.0)
        stock_db.load_rows("trades", [(99999, 1, 10, "NYSE")])
        assert stock_db.feedback.lookup(q, frozenset(["t"])) is None

    def test_analyze_invalidates(self, stock_db):
        q = stock_db.parse(SKEWED_SQL, name="analyze")
        stock_db.feedback.record(q, frozenset(["c"]), 3.0)
        stock_db.analyze(["company"])
        assert stock_db.feedback.lookup(q, frozenset(["c"])) is None


class TestFeedbackPersistence:
    def test_save_load_round_trip(self, stock_db, tmp_path):
        path = str(tmp_path / "feedback.json")
        store = FeedbackStore()
        q = stock_db.parse(SKEWED_SQL, name="persist")
        store.record(q, frozenset(["c"]), 42.0)
        store.record(q, frozenset(["c", "t"]), 77.0)
        store.invalidate_table("orders")  # versions persist too
        store.save(path)

        fresh = FeedbackStore()
        assert fresh.load(path) is True
        assert len(fresh) == 2
        assert fresh.lookup(q, frozenset(["c"])) == 42.0
        assert fresh.lookup(q, frozenset(["c", "t"])) == 77.0

    def test_load_respects_capacity(self, stock_db, tmp_path):
        path = str(tmp_path / "feedback.json")
        store = FeedbackStore()
        q = stock_db.parse(SKEWED_SQL, name="cap")
        store.record(q, frozenset(["c"]), 1.0)
        store.record(q, frozenset(["t"]), 2.0)
        store.record(q, frozenset(["c", "t"]), 3.0)
        store.save(path)
        small = FeedbackStore(capacity=1)
        assert small.load(path) is True
        assert len(small) == 1

    def test_corrupt_and_missing_files_fall_back_gracefully(self, tmp_path):
        store = FeedbackStore()
        assert store.load(str(tmp_path / "missing.json")) is False

        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert store.load(str(garbage)) is False

        wrong_version = tmp_path / "wrong.json"
        wrong_version.write_text(json.dumps({"version": 999, "entries": []}))
        assert store.load(str(wrong_version)) is False

        missing_fields = tmp_path / "fields.json"
        missing_fields.write_text(json.dumps({"version": 1, "entries": [{}]}))
        assert store.load(str(missing_fields)) is False
        assert len(store) == 0  # untouched by every failed load

    def test_settings_feedback_path_warms_store(self, stock_db, tmp_path):
        from repro.engine import Database, EngineSettings

        path = str(tmp_path / "warm.json")
        q = stock_db.parse(SKEWED_SQL, name="warm")
        stock_db.feedback.record(q, frozenset(["c", "t"]), 123.0)
        stock_db.feedback.save(path)
        warmed = Database(EngineSettings(feedback_path=path))
        assert len(warmed.feedback) == 1


class TestFeedbackThreadSafety:
    def test_concurrent_records_lookups_and_invalidations(self, stock_db):
        """Epoch bumps racing with record/lookup never corrupt the store."""
        store = stock_db.feedback
        q = stock_db.parse(SKEWED_SQL, name="race")
        subsets = [frozenset(["c"]), frozenset(["t"]), frozenset(["c", "t"])]
        errors = []
        barrier = threading.Barrier(6)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(200):
                    subset = subsets[(seed + i) % len(subsets)]
                    store.record(q, subset, float(i + 1))
                    value = store.lookup(q, subset)
                    assert value is None or value >= 1.0
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def invalidator() -> None:
            try:
                barrier.wait()
                for i in range(200):
                    store.invalidate_table("company" if i % 2 else "trades")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=invalidator) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) <= store.capacity
        # After the dust settles a fresh record is immediately visible.
        store.record(q, subsets[0], 55.0)
        assert store.lookup(q, subsets[0]) == 55.0
