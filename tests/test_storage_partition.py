"""Partitioned columnar storage: routing, row ids, compression, zone maps."""

from __future__ import annotations

import pytest

from repro.catalog.schema import ColumnType, PartitionSpec, make_schema
from repro.errors import CatalogError, StorageError
from repro.storage.compression import (
    DictionarySegment,
    PlainSegment,
    RLESegment,
    encode_segment,
)
from repro.storage.partition import PartitionedTable, stable_hash
from repro.storage.table import Table


def range_schema():
    return make_schema(
        "events",
        [("id", ColumnType.INT), ("kind", ColumnType.TEXT), ("score", ColumnType.FLOAT)],
        primary_key="id",
        partition_by=PartitionSpec(method="range", column="id", bounds=(10, 20)),
    )


def hash_schema(partitions: int = 4):
    return make_schema(
        "records",
        [("id", ColumnType.INT), ("gid", ColumnType.INT), ("label", ColumnType.TEXT)],
        primary_key="id",
        partition_by=PartitionSpec(method="hash", column="gid", partitions=partitions),
    )


# -- partition specs ---------------------------------------------------------


def test_partition_spec_validation():
    with pytest.raises(CatalogError):
        PartitionSpec(method="round-robin", column="id", partitions=2)
    with pytest.raises(CatalogError):
        PartitionSpec(method="hash", column="id", partitions=0)
    with pytest.raises(CatalogError):
        PartitionSpec(method="hash", column="id", partitions=2, bounds=(1,))
    with pytest.raises(CatalogError):
        PartitionSpec(method="range", column="id")
    with pytest.raises(CatalogError):
        PartitionSpec(method="range", column="id", bounds=(5, 5))
    assert PartitionSpec(method="hash", column="id", partitions=3).num_partitions == 3
    assert PartitionSpec(method="range", column="id", bounds=(1, 9)).num_partitions == 3


def test_schema_rejects_unknown_partition_key():
    with pytest.raises(CatalogError):
        make_schema(
            "t",
            [("id", ColumnType.INT)],
            partition_by=PartitionSpec(method="hash", column="nope", partitions=2),
        )


def test_partitioned_table_requires_a_spec():
    with pytest.raises(StorageError):
        PartitionedTable(make_schema("t", [("id", ColumnType.INT)]))


# -- routing -----------------------------------------------------------------


def test_range_routing_uses_inclusive_lower_bounds():
    table = PartitionedTable(range_schema())
    assert table.route(None) == 0  # NULL keys always land in partition 0
    assert table.route(9) == 0
    assert table.route(10) == 1  # bounds are inclusive lower bounds
    assert table.route(19) == 1
    assert table.route(20) == 2
    assert table.route(1000) == 2


def test_hash_routing_is_stable_and_null_safe():
    table = PartitionedTable(hash_schema(partitions=4))
    assert table.route(None) == 0
    for key in (0, 1, 7, 12345):
        assert table.route(key) == stable_hash(key) % 4
    # stable_hash must not depend on per-process str hash randomization.
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash(True) == stable_hash(1)


def test_range_routing_rejects_uncomparable_keys():
    table = PartitionedTable(range_schema())
    with pytest.raises(StorageError):
        table.route("not-an-int-bound")


# -- loading and global row ids ----------------------------------------------


def test_rows_gather_in_partition_order():
    table = PartitionedTable(range_schema())
    # Insert out of partition order on purpose.
    rows = [(25, "c", 1.0), (5, "a", 2.0), (15, "b", 3.0), (7, "a", 4.0)]
    table.insert_rows(rows)
    # Partition 0: ids 5, 7; partition 1: id 15; partition 2: id 25.
    gathered_ids = table.column_values("id")
    assert gathered_ids == [5, 7, 15, 25]
    assert [table.row(i) for i in table.iter_row_ids()] == list(table.iter_rows())
    assert table.row(2) == (15, "b", 3.0)
    assert table.value(3, "kind") == "c"
    assert table.row_count == len(table) == 4
    with pytest.raises(StorageError):
        table.row(4)


def test_insert_row_returns_gather_order_row_id():
    table = PartitionedTable(range_schema())
    assert table.insert_row((15, "b", 1.0)) == 0
    # A row routed into an earlier partition lands *before* the first one.
    assert table.insert_row((5, "a", 2.0)) == 0
    assert table.column_values("id") == [5, 15]


def test_load_columns_routes_and_rolls_back_atomically():
    table = PartitionedTable(range_schema())
    table.load_columns([[5, 15], ["a", "b"], [1.0, 2.0]])
    assert table.row_count == 2
    with pytest.raises(CatalogError):
        # Second row's id cannot coerce to INT: the whole batch rolls back.
        table.load_columns([[25, "oops"], ["c", "d"], [3.0, 4.0]])
    assert table.row_count == 2
    assert table.column_values("id") == [5, 15]
    assert [p.row_count for p in table.partitions()] == [1, 1, 0]
    with pytest.raises(StorageError):
        table.load_columns([[1], ["a"]])  # wrong column count
    with pytest.raises(StorageError):
        table.load_columns([[1, 2], ["a"], [0.5, 0.5]])  # ragged


def test_insert_dicts_and_coercion():
    table = PartitionedTable(range_schema())
    table.insert_dicts([{"id": 15, "kind": "b"}, {"id": "5", "score": 7}])
    assert table.column_values("id") == [5, 15]  # "5" coerced to int
    assert table.column_values("score") == [7.0, None]
    with pytest.raises(StorageError):
        table.insert_dicts([{"id": 1, "bogus": 2}])


# -- the column_values aliasing regression -----------------------------------


def test_table_column_values_returns_a_copy():
    table = Table(make_schema("t", [("id", ColumnType.INT)]))
    table.insert_rows([(1,), (2,)])
    leaked = table.column_values("id")
    leaked.append(999)
    leaked[0] = -1
    assert table.column_values("id") == [1, 2]
    assert table.row_count == 2


def test_partitioned_column_values_returns_a_copy():
    table = PartitionedTable(range_schema())
    table.insert_rows([(5, "a", 1.0), (15, "b", 2.0)])
    leaked = table.column_values("id")
    leaked.clear()
    assert table.column_values("id") == [5, 15]


# -- compression -------------------------------------------------------------


def test_encode_segment_picks_the_smaller_codec():
    runs = [1] * 50 + [2] * 50
    assert isinstance(encode_segment(runs), RLESegment)
    low_cardinality = [f"s{i % 3}" for i in range(100)]
    seg = encode_segment(low_cardinality)
    assert isinstance(seg, DictionarySegment)
    assert seg.dictionary_size == 3
    incompressible = list(range(100))
    assert isinstance(encode_segment(incompressible), PlainSegment)
    assert isinstance(encode_segment([]), PlainSegment)
    for source in (runs, low_cardinality, incompressible):
        assert encode_segment(source).values() == source


def test_explicit_codecs_and_unknown_codec():
    values = [1, 1, 2]
    assert isinstance(encode_segment(values, codec="rle"), RLESegment)
    assert isinstance(encode_segment(values, codec="dictionary"), DictionarySegment)
    assert isinstance(encode_segment(values, codec="plain"), PlainSegment)
    with pytest.raises(ValueError):
        encode_segment(values, codec="lz4")


def test_rle_never_merges_equal_values_of_different_types():
    # 1 == 1.0 == True in Python; a run-length codec must keep them distinct
    # or decoding changes the stored types.
    mixed = [1, 1.0, True, 1, None, None]
    seg = encode_segment(mixed, codec="rle")
    decoded = seg.values()
    assert decoded == mixed
    assert [type(v) for v in decoded] == [type(v) for v in mixed]


def test_partition_compress_round_trip_and_reopen_on_write():
    table = PartitionedTable(range_schema())
    table.insert_rows([(i, f"k{i % 2}", float(i % 3)) for i in range(30)])
    before = [table.row(i) for i in table.iter_row_ids()]
    table.compress()
    assert all(p.compressed for p in table.partitions() if p.row_count)
    assert [table.row(i) for i in table.iter_row_ids()] == before
    assert table.column_values("kind") == [r[1] for r in before]
    # Appending to a sealed shard transparently decompresses it again.
    table.insert_row((9, "z", 0.0))
    assert table.column_values("id").count(9) == 2


# -- zone maps ---------------------------------------------------------------


def test_zone_maps_track_min_max_and_nulls_incrementally():
    table = PartitionedTable(range_schema())
    table.insert_rows([(5, "a", None), (7, None, 2.5), (15, "b", 1.0)])
    zone = table.zone_map(0)
    assert zone.row_count == 2
    assert (zone.zone("id").minimum, zone.zone("id").maximum) == (5, 7)
    assert zone.zone("kind").null_count == 1
    assert zone.zone("score").null_count == 1
    assert zone.non_null_count("score") == 1
    # An ANALYZE-style refresh recomputes the identical synopsis.
    incremental = {
        (name, z.minimum, z.maximum, z.null_count)
        for name, z in zone.columns.items()
    }
    table.refresh_zone_maps()
    refreshed = {
        (name, z.minimum, z.maximum, z.null_count)
        for name, z in table.zone_map(0).columns.items()
    }
    assert incremental == refreshed
    # Empty partitions stay empty.
    assert table.zone_map(2).row_count == 0
    assert table.zone_map(2).zone("id").minimum is None
