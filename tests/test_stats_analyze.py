"""Unit tests for ANALYZE."""

from repro.catalog import ColumnType, make_schema
from repro.stats import analyze_table
from repro.storage import Table


def _loaded_table():
    schema = make_schema(
        "people",
        [("id", ColumnType.INT), ("name", ColumnType.TEXT), ("age", ColumnType.INT)],
        primary_key="id",
    )
    table = Table(schema)
    rows = []
    for i in range(200):
        rows.append((i, f"name{i % 20}", 20 + (i % 50) if i % 10 else None))
    table.insert_rows(rows)
    return table


class TestAnalyzeTable:
    def test_row_count(self):
        stats = analyze_table(_loaded_table())
        assert stats.row_count == 200
        assert set(stats.columns) == {"id", "name", "age"}

    def test_distinct_counts(self):
        stats = analyze_table(_loaded_table())
        assert stats.column_stats("id").n_distinct == 200
        assert stats.column_stats("name").n_distinct == 20
        assert stats.n_distinct("missing", default=7) == 7

    def test_null_fraction(self):
        stats = analyze_table(_loaded_table())
        age = stats.column_stats("age")
        assert abs(age.null_fraction - 0.1) < 1e-9
        assert abs(age.non_null_fraction - 0.9) < 1e-9

    def test_min_max(self):
        stats = analyze_table(_loaded_table())
        assert stats.column_stats("id").min_value == 0
        assert stats.column_stats("id").max_value == 199

    def test_histogram_and_mcv_present(self):
        stats = analyze_table(_loaded_table())
        assert stats.column_stats("id").histogram is not None
        assert stats.column_stats("name").mcv is not None

    def test_avg_width_text(self):
        stats = analyze_table(_loaded_table())
        assert stats.column_stats("name").avg_width > 4

    def test_statistics_target_limits_buckets(self):
        stats = analyze_table(_loaded_table(), statistics_target=5)
        assert stats.column_stats("id").histogram.num_buckets <= 5

    def test_empty_table(self):
        schema = make_schema("empty", [("id", ColumnType.INT)])
        stats = analyze_table(Table(schema))
        assert stats.row_count == 0
        assert stats.column_stats("id").n_distinct == 0
        assert stats.column_stats("id").histogram is None
