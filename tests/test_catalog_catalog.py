"""Unit tests for the catalog registry."""

import pytest

from repro.catalog import Catalog, ColumnType, make_schema
from repro.errors import CatalogError
from repro.stats import analyze_table
from repro.storage import HashIndex, Table


def _schema(name="t"):
    return make_schema(name, [("id", ColumnType.INT), ("value", ColumnType.TEXT)], primary_key="id")


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        schema = _schema()
        table = Table(schema)
        entry = catalog.register(schema, table)
        assert "t" in catalog
        assert catalog.schema("t") is schema
        assert catalog.table("t") is table
        assert entry.stats is None

    def test_duplicate_registration_rejected(self):
        catalog = Catalog()
        schema = _schema()
        catalog.register(schema, Table(schema))
        with pytest.raises(CatalogError):
            catalog.register(schema, Table(schema))

    def test_unknown_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.entry("missing")

    def test_drop(self):
        catalog = Catalog()
        schema = _schema()
        catalog.register(schema, Table(schema))
        catalog.drop("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop("t")

    def test_table_names_order(self):
        catalog = Catalog()
        for name in ("alpha", "beta", "gamma"):
            schema = _schema(name)
            catalog.register(schema, Table(schema))
        assert catalog.table_names() == ["alpha", "beta", "gamma"]
        assert len(catalog) == 3

    def test_stats_attachment(self):
        catalog = Catalog()
        schema = _schema()
        table = Table(schema)
        table.insert_rows([(1, "a"), (2, "b")])
        catalog.register(schema, table)
        stats = analyze_table(table)
        catalog.set_stats("t", stats)
        assert catalog.stats("t").row_count == 2

    def test_index_registration(self):
        catalog = Catalog()
        schema = _schema()
        table = Table(schema)
        table.insert_rows([(1, "a"), (2, "b")])
        catalog.register(schema, table)
        catalog.add_index("t", HashIndex(table, "id"))
        assert "id" in catalog.indexes("t")
        assert catalog.entry("t").index_on("id") is not None
        assert catalog.entry("t").index_on("value") is None
