"""Unit tests for hash and sorted indexes."""

import pytest

from repro.catalog import ColumnType, make_schema
from repro.errors import StorageError
from repro.storage import HashIndex, SortedIndex, Table, build_foreign_key_indexes


def _table_with_rows():
    schema = make_schema(
        "trades",
        [("id", ColumnType.INT), ("company_id", ColumnType.INT), ("note", ColumnType.TEXT)],
        primary_key="id",
        foreign_keys=[("company_id", "company", "id")],
    )
    table = Table(schema)
    table.insert_rows(
        [
            (1, 10, "a"),
            (2, 10, "b"),
            (3, 20, "c"),
            (4, None, "d"),
            (5, 30, "e"),
        ]
    )
    return table


class TestHashIndex:
    def test_lookup(self):
        index = HashIndex(_table_with_rows(), "company_id")
        assert index.lookup(10) == [0, 1]
        assert index.lookup(20) == [2]
        assert index.lookup(999) == []
        assert index.lookup(None) == []

    def test_sizes(self):
        index = HashIndex(_table_with_rows(), "company_id")
        assert index.distinct_keys() == 3
        assert len(index) == 4  # NULL row is not indexed

    def test_unknown_column(self):
        with pytest.raises(StorageError):
            HashIndex(_table_with_rows(), "missing")


class TestSortedIndex:
    def test_equality_lookup(self):
        index = SortedIndex(_table_with_rows(), "company_id")
        assert sorted(index.lookup(10)) == [0, 1]
        assert index.lookup(None) == []

    def test_range_lookup(self):
        index = SortedIndex(_table_with_rows(), "company_id")
        assert sorted(index.range_lookup(low=10, high=20)) == [0, 1, 2]
        assert sorted(index.range_lookup(low=15)) == [2, 4]
        assert sorted(index.range_lookup(high=10, include_high=False)) == []
        assert index.range_lookup(low=25, high=21) == []

    def test_len(self):
        assert len(SortedIndex(_table_with_rows(), "company_id")) == 4


class TestForeignKeyIndexes:
    def test_builds_pk_and_fk_indexes(self):
        indexes = build_foreign_key_indexes(_table_with_rows())
        columns = {index.column for index in indexes}
        assert columns == {"id", "company_id"}
