"""Unit tests for expression compilation, operators and the executor."""

import pytest

from repro.errors import ExecutionError
from repro.executor import ResultSet, explain_plan
from repro.executor.expressions import ColumnResolver, compile_conjunction, like_match
from repro.executor.operators import aggregate_result, join_results, scan_table
from repro.optimizer.plan import JoinAlgorithm

from repro.sql.ast import (
    AggregateFunc,
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Literal,
    SelectItem,
)
from repro.sql.binder import BoundJoin


class TestLikeMatch:
    def test_wildcards(self):
        assert like_match("Downey, Robert 1", "%Downey%Robert%")
        assert not like_match("Smith, John", "%Downey%")
        assert like_match("X-files", "X%")
        assert like_match("abc", "a_c")
        assert not like_match(None, "%")


class TestPredicateCompilation:
    def test_conjunction(self):
        resolver = ColumnResolver([("t", "a"), ("t", "b")])
        predicate = compile_conjunction(
            [
                Comparison(ComparisonOp.GT, Column(ColumnRef("t", "a")), Literal(5)),
                InList(Column(ColumnRef("t", "b")), (Literal("x"), Literal("y"))),
            ],
            resolver,
        )
        assert predicate((10, "x"))
        assert not predicate((1, "x"))
        assert not predicate((10, "z"))
        assert not predicate((None, "x"))

    def test_empty_conjunction_accepts_everything(self):
        resolver = ColumnResolver([("t", "a")])
        assert compile_conjunction([], resolver)((1,))

    def test_unknown_column_rejected(self):
        resolver = ColumnResolver([("t", "a")])
        with pytest.raises(ExecutionError):
            compile_conjunction(
                [Comparison(ComparisonOp.EQ, Column(ColumnRef("t", "zz")), Literal(1))], resolver
            )


class TestOperators:
    def test_scan_with_filter(self, stock_db):
        result, fetched = scan_table(
            stock_db.catalog,
            "c",
            "company",
            [Comparison(ComparisonOp.EQ, Column(ColumnRef("c", "sector")), Literal("tech"))],
        )
        assert fetched == 150
        assert 0 < len(result) < 150
        assert ("c", "symbol") in result.columns

    def test_scan_through_index(self, stock_db):
        predicate = Comparison(ComparisonOp.EQ, Column(ColumnRef("c", "id")), Literal(5))
        result, fetched = scan_table(
            stock_db.catalog,
            "c",
            "company",
            [predicate],
            index_column="id",
            index_filter=predicate,
        )
        assert fetched == 1
        assert len(result) == 1

    def test_join_results_matches_manual_join(self, stock_db):
        left, _ = scan_table(
            stock_db.catalog,
            "c",
            "company",
            [Comparison(ComparisonOp.EQ, Column(ColumnRef("c", "symbol")), Literal("SYM1"))],
        )
        right, _ = scan_table(stock_db.catalog, "t", "trades", [])
        joined = join_results(left, right, [BoundJoin("c", "id", "t", "company_id")])
        expected = sum(
            1 for row in stock_db.catalog.table("trades").iter_rows() if row[1] == 1
        )
        assert len(joined) == expected
        assert len(joined.columns) == len(left.columns) + len(right.columns)

    def test_aggregate_min_count(self):
        result = ResultSet([("t", "a"), ("t", "b")], [(3, "x"), (1, "y"), (2, None)])
        aggregated = aggregate_result(
            result,
            [
                SelectItem(Column(ColumnRef("t", "a")), AggregateFunc.MIN, "lo"),
                SelectItem(Column(ColumnRef("t", "b")), AggregateFunc.COUNT, "n"),
            ],
        )
        assert aggregated.rows == [(1, 2)]

    def test_plain_projection(self):
        result = ResultSet([("t", "a"), ("t", "b")], [(3, "x"), (1, "y")])
        projected = aggregate_result(result, [SelectItem(Column(ColumnRef("t", "b")))])
        assert projected.rows == [("x",), ("y",)]


class TestExecutor:
    SQL = (
        "SELECT count(t.id) AS n FROM company AS c, trades AS t "
        "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
    )

    def test_result_correct_and_instrumented(self, stock_db):
        planned = stock_db.plan(self.SQL)
        execution = stock_db.execute_plan(planned)
        expected = sum(
            1 for row in stock_db.catalog.table("trades").iter_rows() if row[1] == 1
        )
        assert execution.result.rows == [(expected,)]
        assert execution.total_work > 0
        assert execution.simulated_seconds > 0
        # Every plan node has metrics attached.
        for node in planned.plan.walk():
            assert node.node_id in execution.node_metrics
            assert node.actual_rows is not None

    def test_work_depends_on_algorithm(self, stock_db):
        """The same rows cost more under a (mis-chosen) nested loop."""
        planned = stock_db.plan(self.SQL)
        join = planned.plan.join_nodes()[0]
        baseline = stock_db.execute_plan(planned).total_work
        join.algorithm = JoinAlgorithm.NESTED_LOOP
        nested = stock_db.execute_plan(planned).total_work
        assert nested > baseline

    def test_results_identical_across_algorithms(self, stock_db):
        planned = stock_db.plan(self.SQL)
        join = planned.plan.join_nodes()[0]
        reference = stock_db.execute_plan(planned).result.rows
        for algorithm in (
            JoinAlgorithm.HASH_JOIN,
            JoinAlgorithm.NESTED_LOOP,
            JoinAlgorithm.MERGE_JOIN,
        ):
            join.algorithm = algorithm
            assert stock_db.execute_plan(planned).result.rows == reference

    def test_explain_analyze_contains_actuals(self, stock_db):
        planned = stock_db.plan(self.SQL)
        execution = stock_db.execute_plan(planned)
        text = explain_plan(planned.plan, execution)
        assert "actual_rows" in text
        assert "Aggregate" in text
        assert "est_rows" in text
