"""Unit tests for the SQL parser (unified expression tree)."""

import pytest

from repro.errors import ParseError
from repro.sql import (
    AggregateFunc,
    ArithOp,
    Arithmetic,
    Between,
    BoolConnective,
    BoolExpr,
    Case,
    Column,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    parse_expression,
    parse_select,
)

JOB_LIKE = """
SELECT min(k.keyword) AS movie_keyword,
       min(n.name) AS actor_name,
       min(t.title) AS hero_movie
FROM cast_info AS ci,
     keyword AS k,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE k.keyword IN ('superhero', 'sequel', 'second-part')
  AND n.name LIKE '%Downey%Robert%'
  AND t.production_year > 2000
  AND k.id = mk.keyword_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND ci.person_id = n.id;
"""


def _is_equi_join(predicate) -> bool:
    return (
        isinstance(predicate, Comparison)
        and predicate.op is ComparisonOp.EQ
        and isinstance(predicate.left, Column)
        and isinstance(predicate.right, Column)
        and predicate.left.alias != predicate.right.alias
    )


class TestParseSelect:
    def test_job_like_query(self):
        query = parse_select(JOB_LIKE, name="6d")
        assert query.name == "6d"
        assert [t.alias for t in query.tables] == ["ci", "k", "mk", "n", "t"]
        assert len(query.select_items) == 3
        assert all(item.aggregate is AggregateFunc.MIN for item in query.select_items)
        joins = [p for p in query.predicates if _is_equi_join(p)]
        filters = [p for p in query.predicates if not _is_equi_join(p)]
        assert len(joins) == 4
        assert len(filters) == 3

    def test_filter_types(self):
        query = parse_select(JOB_LIKE)
        filters = [p for p in query.predicates if not _is_equi_join(p)]
        assert isinstance(filters[0], InList)
        assert isinstance(filters[1], Like)
        assert isinstance(filters[2], Comparison)
        assert filters[2].op is ComparisonOp.GT

    def test_select_star(self):
        query = parse_select("SELECT * FROM company")
        assert query.select_items == []
        assert query.tables[0].table == "company"
        assert query.tables[0].alias == "company"

    def test_alias_without_as(self):
        query = parse_select("SELECT c.id FROM company c WHERE c.id = 1")
        assert query.tables[0].alias == "c"

    def test_between(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.production_year BETWEEN 1990 AND 2000"
        )
        predicate = query.predicates[0]
        assert isinstance(predicate, Between)
        assert predicate.low == Literal(1990) and predicate.high == Literal(2000)

    def test_is_null_and_is_not_null(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.kind_id IS NULL AND t.title IS NOT NULL"
        )
        first, second = query.predicates
        assert isinstance(first, IsNull) and not first.negated
        assert isinstance(second, IsNull) and second.negated

    def test_not_like_not_in_not_between(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.title NOT LIKE '%x%' "
            "AND t.kind_id NOT IN (1, 2) AND t.id NOT BETWEEN 3 AND 9"
        )
        first, second, third = query.predicates
        assert isinstance(first, Like) and first.negated
        assert isinstance(second, InList) and second.negated
        assert isinstance(third, Between) and third.negated

    def test_or_predicate_with_parentheses(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE (t.production_year > 2000 OR t.kind_id = 1)"
        )
        predicate = query.predicates[0]
        assert isinstance(predicate, BoolExpr)
        assert predicate.op is BoolConnective.OR
        assert len(predicate.operands) == 2

    def test_join_predicate_shape(self):
        query = parse_select(
            "SELECT a.id FROM a, b WHERE a.id = b.a_id AND a.x = 3"
        )
        joins = [p for p in query.predicates if _is_equi_join(p)]
        assert len(joins) == 1

    def test_non_equi_column_comparison_parses(self):
        # Non-equi column-to-column predicates are residual join filters now,
        # classified downstream by the binder.
        query = parse_select("SELECT a.id FROM a, b WHERE a.id < b.a_id")
        predicate = query.predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op is ComparisonOp.LT

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id FROM a WHERE a.id = 1 garbage garbage")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id WHERE a.id = 1")

    def test_count_aggregate(self):
        query = parse_select("SELECT count(t.id) AS n FROM title t")
        assert query.select_items[0].aggregate is AggregateFunc.COUNT
        assert query.select_items[0].output_name == "n"

    def test_roundtrip_to_sql_reparses(self):
        query = parse_select(JOB_LIKE)
        reparsed = parse_select(query.to_sql())
        assert len(reparsed.predicates) == len(query.predicates)
        assert [t.alias for t in reparsed.tables] == [t.alias for t in query.tables]

    def test_numeric_literals_typed(self):
        query = parse_select("SELECT t.id FROM title t WHERE t.x = 1.5 AND t.y = 2")
        first, second = query.predicates
        assert isinstance(first.right.value, float)
        assert isinstance(second.right.value, int)

    def test_negative_literal_folds(self):
        query = parse_select("SELECT t.id FROM title t WHERE t.x = -3")
        assert query.predicates[0].right == Literal(-3)


class TestExpressionGrammar:
    """The precedence-climbing expression parser."""

    def test_arithmetic_precedence(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, Arithmetic) and expr.op is ArithOp.ADD
        assert isinstance(expr.right, Arithmetic)
        assert expr.right.op is ArithOp.MUL

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op is ArithOp.SUB
        assert isinstance(expr.left, Arithmetic) and expr.left.op is ArithOp.SUB
        assert isinstance(expr.right, Column)

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op is ArithOp.MUL
        assert isinstance(expr.left, Arithmetic) and expr.left.op is ArithOp.ADD

    def test_unary_minus_on_column(self):
        expr = parse_expression("-a * b")
        # Unary minus binds tighter than '*'.
        assert expr.op is ArithOp.MUL
        from repro.sql import Negate

        assert isinstance(expr.left, Negate)

    def test_modulo_and_division(self):
        expr = parse_expression("a % 2 = b / 3")
        assert isinstance(expr, Comparison)
        assert expr.left.op is ArithOp.MOD
        assert expr.right.op is ArithOp.DIV

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse_expression("a + 1 < b * 2")
        assert isinstance(expr, Comparison) and expr.op is ComparisonOp.LT
        assert isinstance(expr.left, Arithmetic)
        assert isinstance(expr.right, Arithmetic)

    def test_not_and_or_precedence(self):
        expr = parse_expression("NOT a = 1 OR b = 2 AND c = 3")
        # OR(NOT(a=1), AND(b=2, c=3))
        assert isinstance(expr, BoolExpr) and expr.op is BoolConnective.OR
        assert isinstance(expr.operands[0], Not)
        inner = expr.operands[1]
        assert isinstance(inner, BoolExpr) and inner.op is BoolConnective.AND

    def test_nested_boolean_trees_flatten(self):
        expr = parse_expression("a = 1 AND (b = 2 AND c = 3)")
        assert isinstance(expr, BoolExpr) and expr.op is BoolConnective.AND
        assert len(expr.operands) == 3

    def test_case_when(self):
        expr = parse_expression(
            "CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END"
        )
        assert isinstance(expr, Case)
        assert len(expr.whens) == 2
        assert expr.default == Literal("zero")

    def test_case_without_else(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 2 END")
        assert isinstance(expr, Case)
        assert expr.default is None

    def test_case_requires_when(self):
        with pytest.raises(ParseError, match="CASE requires at least one WHEN"):
            parse_expression("CASE ELSE 1 END")

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)

    def test_arithmetic_in_select_list(self):
        query = parse_select("SELECT t.a * 2 + t.b AS s FROM t")
        item = query.select_items[0]
        assert item.output_name == "s"
        assert isinstance(item.expr, Arithmetic)

    def test_aggregate_over_expression(self):
        query = parse_select("SELECT sum(t.a * t.b) AS v FROM t")
        item = query.select_items[0]
        assert item.aggregate is AggregateFunc.SUM
        assert isinstance(item.expr, Arithmetic)

    def test_expression_roundtrips_tree_identically(self):
        for sql in (
            "a + (b + c)",
            "(a - b) * (c / d)",
            "NOT (a = 1 OR b = 2)",
            "CASE WHEN a IS NULL THEN 0 ELSE a % 5 END",
            "a * -3 + 2",
        ):
            expr = parse_expression(sql)
            assert parse_expression(expr.to_sql()) == expr, sql

    def test_not_requires_predicate_keyword(self):
        with pytest.raises(ParseError, match="expected IN, LIKE or BETWEEN"):
            parse_expression("a NOT = 1")


class TestResultShapingClauses:
    def test_group_by(self):
        query = parse_select(
            "SELECT t.kind_id, count(t.id) AS n FROM title t GROUP BY t.kind_id"
        )
        assert [str(c) for c in query.group_by] == ["t.kind_id"]
        assert query.select_items[1].aggregate is AggregateFunc.COUNT

    def test_count_star(self):
        query = parse_select("SELECT count(*) AS n FROM title t")
        item = query.select_items[0]
        assert item.aggregate is AggregateFunc.COUNT
        assert item.column is None and item.star
        assert str(item) == "count(*) AS n"

    def test_sum_and_avg(self):
        query = parse_select("SELECT sum(t.id) s, avg(t.id) a FROM title t")
        assert query.select_items[0].aggregate is AggregateFunc.SUM
        assert query.select_items[1].aggregate is AggregateFunc.AVG

    def test_star_only_in_count(self):
        with pytest.raises(ParseError, match=r"'\*' is only allowed inside COUNT"):
            parse_select("SELECT sum(*) FROM title t")

    def test_order_by_directions(self):
        query = parse_select(
            "SELECT t.id, t.title FROM title t ORDER BY t.id DESC, t.title ASC, t.kind_id"
        )
        assert [(str(k.column), k.ascending) for k in query.order_by] == [
            ("t.id", False),
            ("t.title", True),
            ("t.kind_id", True),
        ]

    def test_limit_and_offset(self):
        query = parse_select("SELECT t.id FROM title t LIMIT 10 OFFSET 3")
        assert query.limit == 10
        assert query.offset == 3

    def test_limit_without_offset(self):
        query = parse_select("SELECT t.id FROM title t LIMIT 0")
        assert query.limit == 0
        assert query.offset is None

    def test_distinct(self):
        query = parse_select("SELECT DISTINCT t.kind_id FROM title t")
        assert query.distinct

    def test_full_clause_ordering(self):
        query = parse_select(
            "SELECT t.kind_id, min(t.title) AS first_title\n"
            "FROM title t WHERE t.production_year > 2000\n"
            "GROUP BY t.kind_id ORDER BY first_title DESC LIMIT 5 OFFSET 1;"
        )
        assert query.group_by and query.order_by
        assert (query.limit, query.offset) == (5, 1)

    def test_shaped_roundtrip_to_sql_reparses(self):
        sql = (
            "SELECT DISTINCT t.kind_id, count(*) AS n FROM title t "
            "WHERE t.production_year > 1990 "
            "GROUP BY t.kind_id ORDER BY n DESC, t.kind_id LIMIT 7 OFFSET 2"
        )
        query = parse_select(sql)
        reparsed = parse_select(query.to_sql())
        assert reparsed.to_sql() == query.to_sql()

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError, match="non-negative integer"):
            parse_select("SELECT t.id FROM title t LIMIT -1")

    def test_keyword_named_columns_addressable_when_qualified(self):
        # Keywords are unambiguous after 'alias.', so columns that collide
        # with (new) keywords remain queryable in qualified form.
        query = parse_select(
            "SELECT t.sum, max(t.order) AS hi FROM t AS t "
            "WHERE t.count > 1 GROUP BY t.sum ORDER BY t.sum"
        )
        assert str(query.select_items[0].column) == "t.sum"
        assert str(query.group_by[0]) == "t.sum"


class TestParserErrorMessages:
    """Error messages carry the token offset, line/column and a SQL excerpt."""

    def test_bare_column_with_aggregates(self):
        sql = "SELECT t.title, count(t.id) AS n FROM title t"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        message = str(excinfo.value)
        assert (
            "bare column t.title cannot be mixed with aggregates "
            "without GROUP BY" in message
        )
        assert "at offset 7" in message
        assert "near 't.title, count(t.id) AS...'" in message
        assert excinfo.value.position == 7

    def test_misplaced_limit_before_from(self):
        sql = "SELECT t.id LIMIT 5 FROM title t"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        message = str(excinfo.value)
        assert "LIMIT must come after the FROM clause" in message
        assert "at offset 12" in message
        assert "near 'LIMIT 5 FROM title t'" in message

    def test_multi_line_sql_reports_line_and_column(self):
        sql = "SELECT t.id\nFROM title t\nWHERE t.id <\nLIMIT 3"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        # The offending token is LIMIT at offset 38, the start of line 4.
        assert excinfo.value.line == 4
        assert excinfo.value.column == 1
        assert str(excinfo.value) == (
            "expected an expression but found 'limit' "
            "(at offset 38, line 4 column 1, near 'LIMIT 3')"
        )

    def test_single_line_sql_reports_line_one(self):
        with pytest.raises(ParseError) as excinfo:
            parse_select("SELECT t.id FROM title t LIMIT x")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 32
        assert "line 1 column 32" in str(excinfo.value)

    def test_limit_before_order_by_reports_clause_order(self):
        sql = "SELECT t.id FROM title t LIMIT 2 ORDER BY t.id"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        message = str(excinfo.value)
        assert "ORDER is out of order" in message
        assert "WHERE, GROUP BY, ORDER BY, LIMIT" in message
        assert "near 'ORDER BY t.id'" in message

    def test_offset_after_from_reports_limit_requirement(self):
        with pytest.raises(ParseError, match="only valid directly after LIMIT"):
            parse_select("SELECT t.id FROM title t OFFSET 2")

    def test_group_without_by(self):
        with pytest.raises(ParseError, match="expected keyword 'BY'"):
            parse_select("SELECT count(*) FROM title t GROUP t.kind_id")

    def test_error_at_end_of_input(self):
        with pytest.raises(ParseError, match="near 'end of input'"):
            parse_select("SELECT t.id FROM title t LIMIT")
