"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import (
    AggregateFunc,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    parse_select,
)

JOB_LIKE = """
SELECT min(k.keyword) AS movie_keyword,
       min(n.name) AS actor_name,
       min(t.title) AS hero_movie
FROM cast_info AS ci,
     keyword AS k,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE k.keyword IN ('superhero', 'sequel', 'second-part')
  AND n.name LIKE '%Downey%Robert%'
  AND t.production_year > 2000
  AND k.id = mk.keyword_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND ci.person_id = n.id;
"""


class TestParseSelect:
    def test_job_like_query(self):
        query = parse_select(JOB_LIKE, name="6d")
        assert query.name == "6d"
        assert [t.alias for t in query.tables] == ["ci", "k", "mk", "n", "t"]
        assert len(query.select_items) == 3
        assert all(item.aggregate is AggregateFunc.MIN for item in query.select_items)
        joins = query.join_predicates()
        filters = query.filter_predicates()
        assert len(joins) == 4
        assert len(filters) == 3

    def test_filter_types(self):
        query = parse_select(JOB_LIKE)
        filters = query.filter_predicates()
        assert isinstance(filters[0], InPredicate)
        assert isinstance(filters[1], LikePredicate)
        assert isinstance(filters[2], ComparisonPredicate)
        assert filters[2].op is ComparisonOp.GT

    def test_select_star(self):
        query = parse_select("SELECT * FROM company")
        assert query.select_items == []
        assert query.tables[0].table == "company"
        assert query.tables[0].alias == "company"

    def test_alias_without_as(self):
        query = parse_select("SELECT c.id FROM company c WHERE c.id = 1")
        assert query.tables[0].alias == "c"

    def test_between(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.production_year BETWEEN 1990 AND 2000"
        )
        predicate = query.filter_predicates()[0]
        assert isinstance(predicate, BetweenPredicate)
        assert predicate.low == 1990 and predicate.high == 2000

    def test_is_null_and_is_not_null(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.kind_id IS NULL AND t.title IS NOT NULL"
        )
        first, second = query.filter_predicates()
        assert isinstance(first, NullPredicate) and not first.negated
        assert isinstance(second, NullPredicate) and second.negated

    def test_not_like_and_not_in(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.title NOT LIKE '%x%' AND t.kind_id NOT IN (1, 2)"
        )
        first, second = query.filter_predicates()
        assert isinstance(first, LikePredicate) and first.negated
        assert isinstance(second, InPredicate)

    def test_or_predicate_with_parentheses(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE (t.production_year > 2000 OR t.kind_id = 1)"
        )
        predicate = query.filter_predicates()[0]
        assert isinstance(predicate, OrPredicate)
        assert len(predicate.operands) == 2

    def test_join_predicate_detection(self):
        query = parse_select(
            "SELECT a.id FROM a, b WHERE a.id = b.a_id AND a.x = 3"
        )
        assert len(query.join_predicates()) == 1
        assert isinstance(query.join_predicates()[0], JoinPredicate)

    def test_column_comparison_non_join_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id FROM a, b WHERE a.id < b.a_id")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id FROM a WHERE a.id = 1 garbage garbage")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id WHERE a.id = 1")

    def test_count_aggregate(self):
        query = parse_select("SELECT count(t.id) AS n FROM title t")
        assert query.select_items[0].aggregate is AggregateFunc.COUNT
        assert query.select_items[0].output_name == "n"

    def test_roundtrip_to_sql_reparses(self):
        query = parse_select(JOB_LIKE)
        reparsed = parse_select(query.to_sql())
        assert len(reparsed.predicates) == len(query.predicates)
        assert [t.alias for t in reparsed.tables] == [t.alias for t in query.tables]

    def test_numeric_literals_typed(self):
        query = parse_select("SELECT t.id FROM title t WHERE t.x = 1.5 AND t.y = 2")
        first, second = query.filter_predicates()
        assert isinstance(first.value, float)
        assert isinstance(second.value, int)


class TestResultShapingClauses:
    def test_group_by(self):
        query = parse_select(
            "SELECT t.kind_id, count(t.id) AS n FROM title t GROUP BY t.kind_id"
        )
        assert [str(c) for c in query.group_by] == ["t.kind_id"]
        assert query.select_items[1].aggregate is AggregateFunc.COUNT

    def test_count_star(self):
        query = parse_select("SELECT count(*) AS n FROM title t")
        item = query.select_items[0]
        assert item.aggregate is AggregateFunc.COUNT
        assert item.column is None and item.star
        assert str(item) == "count(*) AS n"

    def test_sum_and_avg(self):
        query = parse_select("SELECT sum(t.id) s, avg(t.id) a FROM title t")
        assert query.select_items[0].aggregate is AggregateFunc.SUM
        assert query.select_items[1].aggregate is AggregateFunc.AVG

    def test_star_only_in_count(self):
        with pytest.raises(ParseError, match=r"'\*' is only allowed inside COUNT"):
            parse_select("SELECT sum(*) FROM title t")

    def test_order_by_directions(self):
        query = parse_select(
            "SELECT t.id, t.title FROM title t ORDER BY t.id DESC, t.title ASC, t.kind_id"
        )
        assert [(str(k.column), k.ascending) for k in query.order_by] == [
            ("t.id", False),
            ("t.title", True),
            ("t.kind_id", True),
        ]

    def test_limit_and_offset(self):
        query = parse_select("SELECT t.id FROM title t LIMIT 10 OFFSET 3")
        assert query.limit == 10
        assert query.offset == 3

    def test_limit_without_offset(self):
        query = parse_select("SELECT t.id FROM title t LIMIT 0")
        assert query.limit == 0
        assert query.offset is None

    def test_distinct(self):
        query = parse_select("SELECT DISTINCT t.kind_id FROM title t")
        assert query.distinct

    def test_full_clause_ordering(self):
        query = parse_select(
            "SELECT t.kind_id, min(t.title) AS first_title\n"
            "FROM title t WHERE t.production_year > 2000\n"
            "GROUP BY t.kind_id ORDER BY first_title DESC LIMIT 5 OFFSET 1;"
        )
        assert query.group_by and query.order_by
        assert (query.limit, query.offset) == (5, 1)

    def test_shaped_roundtrip_to_sql_reparses(self):
        sql = (
            "SELECT DISTINCT t.kind_id, count(*) AS n FROM title t "
            "WHERE t.production_year > 1990 "
            "GROUP BY t.kind_id ORDER BY n DESC, t.kind_id LIMIT 7 OFFSET 2"
        )
        query = parse_select(sql)
        reparsed = parse_select(query.to_sql())
        assert reparsed.to_sql() == query.to_sql()

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError, match="non-negative integer"):
            parse_select("SELECT t.id FROM title t LIMIT -1")

    def test_keyword_named_columns_addressable_when_qualified(self):
        # Keywords are unambiguous after 'alias.', so columns that collide
        # with (new) keywords remain queryable in qualified form.
        query = parse_select(
            "SELECT t.sum, max(t.order) AS hi FROM t AS t "
            "WHERE t.count > 1 GROUP BY t.sum ORDER BY t.sum"
        )
        assert str(query.select_items[0].column) == "t.sum"
        assert str(query.group_by[0]) == "t.sum"


class TestParserErrorMessages:
    """Error messages carry the token offset and an excerpt of the SQL."""

    def test_bare_column_with_aggregates(self):
        sql = "SELECT t.title, count(t.id) AS n FROM title t"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        message = str(excinfo.value)
        assert (
            "bare column t.title cannot be mixed with aggregates "
            "without GROUP BY" in message
        )
        assert "at offset 7" in message
        assert "near 't.title, count(t.id) AS...'" in message
        assert excinfo.value.position == 7

    def test_misplaced_limit_before_from(self):
        sql = "SELECT t.id LIMIT 5 FROM title t"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        message = str(excinfo.value)
        assert "LIMIT must come after the FROM clause" in message
        assert "at offset 12" in message
        assert "near 'LIMIT 5 FROM title t'" in message

    def test_limit_before_order_by_reports_clause_order(self):
        sql = "SELECT t.id FROM title t LIMIT 2 ORDER BY t.id"
        with pytest.raises(ParseError) as excinfo:
            parse_select(sql)
        message = str(excinfo.value)
        assert "ORDER is out of order" in message
        assert "WHERE, GROUP BY, ORDER BY, LIMIT" in message
        assert "near 'ORDER BY t.id'" in message

    def test_offset_after_from_reports_limit_requirement(self):
        with pytest.raises(ParseError, match="only valid directly after LIMIT"):
            parse_select("SELECT t.id FROM title t OFFSET 2")

    def test_group_without_by(self):
        with pytest.raises(ParseError, match="expected keyword 'BY'"):
            parse_select("SELECT count(*) FROM title t GROUP t.kind_id")

    def test_error_at_end_of_input(self):
        with pytest.raises(ParseError, match="near 'end of input'"):
            parse_select("SELECT t.id FROM title t LIMIT")
