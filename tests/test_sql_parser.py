"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import (
    AggregateFunc,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    NullPredicate,
    OrPredicate,
    parse_select,
)

JOB_LIKE = """
SELECT min(k.keyword) AS movie_keyword,
       min(n.name) AS actor_name,
       min(t.title) AS hero_movie
FROM cast_info AS ci,
     keyword AS k,
     movie_keyword AS mk,
     name AS n,
     title AS t
WHERE k.keyword IN ('superhero', 'sequel', 'second-part')
  AND n.name LIKE '%Downey%Robert%'
  AND t.production_year > 2000
  AND k.id = mk.keyword_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND ci.person_id = n.id;
"""


class TestParseSelect:
    def test_job_like_query(self):
        query = parse_select(JOB_LIKE, name="6d")
        assert query.name == "6d"
        assert [t.alias for t in query.tables] == ["ci", "k", "mk", "n", "t"]
        assert len(query.select_items) == 3
        assert all(item.aggregate is AggregateFunc.MIN for item in query.select_items)
        joins = query.join_predicates()
        filters = query.filter_predicates()
        assert len(joins) == 4
        assert len(filters) == 3

    def test_filter_types(self):
        query = parse_select(JOB_LIKE)
        filters = query.filter_predicates()
        assert isinstance(filters[0], InPredicate)
        assert isinstance(filters[1], LikePredicate)
        assert isinstance(filters[2], ComparisonPredicate)
        assert filters[2].op is ComparisonOp.GT

    def test_select_star(self):
        query = parse_select("SELECT * FROM company")
        assert query.select_items == []
        assert query.tables[0].table == "company"
        assert query.tables[0].alias == "company"

    def test_alias_without_as(self):
        query = parse_select("SELECT c.id FROM company c WHERE c.id = 1")
        assert query.tables[0].alias == "c"

    def test_between(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.production_year BETWEEN 1990 AND 2000"
        )
        predicate = query.filter_predicates()[0]
        assert isinstance(predicate, BetweenPredicate)
        assert predicate.low == 1990 and predicate.high == 2000

    def test_is_null_and_is_not_null(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.kind_id IS NULL AND t.title IS NOT NULL"
        )
        first, second = query.filter_predicates()
        assert isinstance(first, NullPredicate) and not first.negated
        assert isinstance(second, NullPredicate) and second.negated

    def test_not_like_and_not_in(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE t.title NOT LIKE '%x%' AND t.kind_id NOT IN (1, 2)"
        )
        first, second = query.filter_predicates()
        assert isinstance(first, LikePredicate) and first.negated
        assert isinstance(second, InPredicate)

    def test_or_predicate_with_parentheses(self):
        query = parse_select(
            "SELECT t.id FROM title t WHERE (t.production_year > 2000 OR t.kind_id = 1)"
        )
        predicate = query.filter_predicates()[0]
        assert isinstance(predicate, OrPredicate)
        assert len(predicate.operands) == 2

    def test_join_predicate_detection(self):
        query = parse_select(
            "SELECT a.id FROM a, b WHERE a.id = b.a_id AND a.x = 3"
        )
        assert len(query.join_predicates()) == 1
        assert isinstance(query.join_predicates()[0], JoinPredicate)

    def test_column_comparison_non_join_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id FROM a, b WHERE a.id < b.a_id")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id FROM a WHERE a.id = 1 garbage garbage")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a.id WHERE a.id = 1")

    def test_count_aggregate(self):
        query = parse_select("SELECT count(t.id) AS n FROM title t")
        assert query.select_items[0].aggregate is AggregateFunc.COUNT
        assert query.select_items[0].output_name == "n"

    def test_roundtrip_to_sql_reparses(self):
        query = parse_select(JOB_LIKE)
        reparsed = parse_select(query.to_sql())
        assert len(reparsed.predicates) == len(query.predicates)
        assert [t.alias for t in reparsed.tables] == [t.alias for t in query.tables]

    def test_numeric_literals_typed(self):
        query = parse_select("SELECT t.id FROM title t WHERE t.x = 1.5 AND t.y = 2")
        first, second = query.filter_predicates()
        assert isinstance(first.value, float)
        assert isinstance(second.value, int)
