"""Unit tests for the Connection/Cursor/PreparedStatement serving API."""

import pytest

import repro
from repro.core import ReoptimizationPolicy
from repro.engine import connect
from repro.errors import InterfaceError, ParameterError

SKEWED_SQL = (
    "SELECT count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.symbol = 'SYM1' AND c.id = t.company_id"
)
SIMPLE_SQL = "SELECT c.id, c.symbol FROM company AS c WHERE c.sector = 'tech'"


@pytest.fixture
def conn(stock_db):
    return connect(stock_db, reoptimize=False)


class TestModuleSurface:
    def test_dbapi_module_attributes(self):
        assert repro.apilevel == "2.0"
        assert repro.paramstyle == "qmark"
        assert repro.threadsafety == 1

    def test_connect_creates_fresh_database(self):
        connection = repro.connect()
        assert len(connection.database.catalog) == 0


class TestCursor:
    def test_execute_and_fetch_protocol(self, conn, stock_db):
        cursor = conn.execute(SIMPLE_SQL)
        expected = stock_db.run(SIMPLE_SQL).rows
        assert cursor.rowcount == len(expected)
        assert [d[0] for d in cursor.description] == ["c.id", "c.symbol"]
        first = cursor.fetchone()
        assert first == expected[0]
        chunk = cursor.fetchmany(2)
        assert chunk == expected[1:3]
        rest = cursor.fetchall()
        assert rest == expected[3:]
        assert cursor.fetchone() is None

    def test_cursor_iteration(self, conn, stock_db):
        rows = list(conn.execute(SIMPLE_SQL))
        assert rows == stock_db.run(SIMPLE_SQL).rows

    def test_output_name_in_description(self, conn):
        cursor = conn.execute("SELECT count(c.id) AS n FROM company AS c")
        assert [d[0] for d in cursor.description] == ["n"]

    def test_execute_with_params(self, conn, stock_db):
        cursor = conn.cursor().execute(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?",
            ("tech",),
        )
        literal = stock_db.run(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'"
        )
        assert cursor.fetchall() == literal.rows

    def test_executemany_keeps_last_result(self, conn):
        cursor = conn.cursor().executemany(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?",
            [("tech",), ("energy",)],
        )
        energy = conn.execute(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'energy'"
        )
        assert cursor.fetchall() == energy.fetchall()

    def test_fetch_before_execute_rejected(self, conn):
        cursor = conn.cursor()
        with pytest.raises(InterfaceError):
            cursor.fetchall()

    def test_closed_cursor_rejected(self, conn):
        cursor = conn.execute(SIMPLE_SQL)
        cursor.close()
        with pytest.raises(InterfaceError):
            cursor.fetchone()

    def test_rowcount_before_execute(self, conn):
        assert conn.cursor().rowcount == -1


class TestConnectionLifecycle:
    def test_closed_connection_rejects_statements(self, stock_db):
        connection = connect(stock_db, reoptimize=False)
        connection.close()
        assert connection.closed
        with pytest.raises(InterfaceError):
            connection.execute(SIMPLE_SQL)
        with pytest.raises(InterfaceError):
            connection.cursor()

    def test_context_manager_closes(self, stock_db):
        with connect(stock_db, reoptimize=False) as connection:
            connection.execute(SIMPLE_SQL)
        assert connection.closed

    def test_close_invalidates_outstanding_cursors(self, stock_db):
        connection = connect(stock_db, reoptimize=False)
        cursor = connection.execute(SIMPLE_SQL)
        other = connection.cursor()
        connection.close()
        assert cursor.closed and other.closed
        with pytest.raises(InterfaceError):
            cursor.fetchone()
        with pytest.raises(InterfaceError):
            cursor.fetchall()
        with pytest.raises(InterfaceError):
            other.execute(SIMPLE_SQL)
        assert cursor.description is None

    def test_close_invalidates_outstanding_prepared_statements(self, stock_db):
        connection = connect(stock_db, reoptimize=False)
        statement = connection.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        statement.execute(("tech",))
        connection.close()
        assert statement.closed
        with pytest.raises(InterfaceError):
            statement.execute(("tech",))

    def test_close_ordering_is_idempotent_and_safe(self, stock_db):
        connection = connect(stock_db, reoptimize=False)
        cursor = connection.execute(SIMPLE_SQL)
        statement = connection.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        # Closing a resource before the connection, then the connection,
        # then the resource again must never raise.
        cursor.close()
        connection.close()
        connection.close()
        cursor.close()
        statement.close()
        with pytest.raises(InterfaceError):
            statement.execute(("tech",))

    def test_explicitly_closed_statement_rejects_before_connection_close(
        self, conn
    ):
        statement = conn.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        statement.close()
        with pytest.raises(InterfaceError):
            statement.execute(("tech",))
        # The connection itself is still open and serving.
        assert conn.execute(SIMPLE_SQL).rowcount >= 0

    def test_commit_rollback_are_noops(self, conn):
        conn.commit()
        conn.rollback()

    def test_metrics_accumulate(self, conn):
        conn.execute(SIMPLE_SQL)
        conn.execute(SKEWED_SQL)
        assert conn.metrics.statements == 2
        assert conn.metrics.planning_seconds > 0
        assert conn.metrics.execution_seconds > 0


class TestPreparedStatements:
    def test_prepared_matches_literal(self, conn, stock_db):
        statement = conn.prepare(
            "SELECT count(t.id) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = ? AND c.id = t.company_id"
        )
        assert statement.param_count == 1
        literal = stock_db.run(SKEWED_SQL)
        assert statement.execute(("SYM1",)).fetchall() == literal.rows

    def test_second_execution_hits_plan_cache(self, conn):
        statement = conn.prepare(
            "SELECT count(t.id) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = ? AND c.id = t.company_id"
        )
        cold = statement.execute(("SYM1",))
        warm = statement.execute(("SYM1",))
        assert not cold.context.plan_cached
        assert warm.context.plan_cached
        assert warm.context.planning_seconds == 0.0
        assert conn.cache_stats.hits == 1
        assert warm.fetchall() == cold.fetchall()

    def test_distinct_params_are_distinct_cache_entries(self, conn):
        statement = conn.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        statement.execute(("tech",))
        other = statement.execute(("energy",))
        assert not other.context.plan_cached
        again = statement.execute(("energy",))
        assert again.context.plan_cached

    def test_prepared_and_adhoc_share_cache(self, conn):
        statement = conn.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        statement.execute(("tech",))
        adhoc = conn.execute(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = 'tech'"
        )
        assert adhoc.context.plan_cached

    def test_wrong_arity_rejected(self, conn):
        statement = conn.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        with pytest.raises(ParameterError):
            statement.execute(())

    def test_analyze_on_connection_invalidates_cache(self, conn):
        statement = conn.prepare(
            "SELECT count(c.id) AS n FROM company AS c WHERE c.sector = ?"
        )
        statement.execute(("tech",))
        statement.execute(("tech",))
        assert conn.cache_stats.hits == 1
        conn.analyze(["company"])
        refreshed = statement.execute(("tech",))
        assert not refreshed.context.plan_cached


class TestReoptimizingConnection:
    def test_reoptimization_via_cursor(self, stock_db):
        connection = connect(
            stock_db, policy=ReoptimizationPolicy(threshold=4), plan_cache_size=0
        )
        cursor = connection.execute(SKEWED_SQL)
        context = cursor.context
        assert context.reoptimized
        assert cursor.fetchall() == stock_db.run(SKEWED_SQL).rows
        assert connection.metrics.reoptimized_statements == 1

    def test_capture_explain(self, stock_db):
        connection = connect(stock_db, reoptimize=False, capture_explain=True)
        cursor = connection.execute(SIMPLE_SQL)
        assert cursor.explain_text is not None
        assert "actual_rows" in cursor.explain_text


GROUPED_SQL = (
    "SELECT c.sector, count(*) AS n, sum(t.shares) AS volume "
    "FROM company AS c, trades AS t WHERE c.id = t.company_id "
    "GROUP BY c.sector ORDER BY volume DESC LIMIT 2"
)


class TestGroupedQueriesThroughPipeline:
    """Grouped-aggregate statements flow through cache/EXPLAIN like any other."""

    def test_plan_cache_hit_on_repeated_group_by(self, conn):
        first = conn.execute(GROUPED_SQL)
        second = conn.execute(GROUPED_SQL)
        assert not first.context.plan_cached
        assert second.context.plan_cached
        assert conn.cache_stats.hits == 1
        assert second.fetchall() == first.fetchall()

    def test_explain_shows_shaping_nodes(self, stock_db):
        connection = connect(stock_db, reoptimize=False, capture_explain=True)
        text = connection.execute(GROUPED_SQL).explain_text
        assert "HashAggregate (keys: c.sector)" in text
        assert "Sort (volume DESC)" in text
        assert "Limit 2" in text

    def test_description_types_for_new_outputs(self, conn):
        from repro.catalog import ColumnType

        cursor = conn.execute(
            "SELECT c.sector, count(*) AS n, sum(t.shares) AS total, "
            "avg(t.shares) AS mean FROM company AS c, trades AS t "
            "WHERE c.id = t.company_id GROUP BY c.sector"
        )
        description = cursor.description
        assert [d[0] for d in description] == ["c.sector", "n", "total", "mean"]
        assert [d[1] for d in description] == [
            ColumnType.TEXT,  # group key keeps its column type
            ColumnType.INT,  # COUNT is always integer
            ColumnType.INT,  # SUM over an int column stays int
            ColumnType.FLOAT,  # AVG is always float
        ]

    def test_count_star_description_name(self, conn):
        cursor = conn.execute("SELECT count(*) FROM company AS c")
        assert cursor.description[0][0] == "count(*)"
        assert cursor.fetchall() == [(150,)]

    def test_reoptimized_grouped_query_matches_plain_run(self, stock_db):
        connection = connect(
            stock_db,
            policy=ReoptimizationPolicy(threshold=2, min_query_seconds=0.0),
            plan_cache_size=0,
        )
        skewed = (
            "SELECT t.venue, count(*) AS n FROM company AS c, trades AS t "
            "WHERE c.symbol = 'SYM1' AND c.id = t.company_id "
            "GROUP BY t.venue ORDER BY n DESC"
        )
        cursor = connection.execute(skewed)
        baseline = connect(stock_db, reoptimize=False).execute(skewed)
        assert cursor.fetchall() == baseline.fetchall()

    def test_prepared_grouped_statement_with_params(self, conn):
        statement = conn.prepare(
            "SELECT t.venue, sum(t.shares) AS s FROM trades AS t "
            "WHERE t.shares > ? GROUP BY t.venue ORDER BY s DESC LIMIT 1"
        )
        top = statement.execute((0,)).fetchall()
        assert len(top) == 1
        again = statement.execute((0,)).fetchall()
        assert again == top
