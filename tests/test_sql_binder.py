"""Unit tests for the binder."""

import pytest

from repro.errors import BindError
from repro.sql import parse_select

SQL = """
SELECT min(c.symbol) AS sym, count(t.id) AS n
FROM company AS c, trades AS t
WHERE c.symbol = 'SYM1'
  AND t.shares > 100
  AND c.id = t.company_id;
"""


class TestBinder:
    def test_bind_splits_filters_and_joins(self, stock_db):
        bound = stock_db.binder.bind(parse_select(SQL, name="demo"))
        assert bound.name == "demo"
        assert bound.aliases == ["c", "t"]
        assert bound.table_for("c") == "company"
        assert len(bound.filters_for("c")) == 1
        assert len(bound.filters_for("t")) == 1
        assert len(bound.joins) == 1
        join = bound.joins[0]
        assert join.aliases() == ("c", "t")
        assert join.column_for("c") == "id"
        assert join.column_for("t") == "company_id"
        assert join.other("c") == ("t", "company_id")

    def test_unqualified_column_resolution(self, stock_db):
        bound = stock_db.parse("SELECT symbol FROM company WHERE symbol = 'SYM1'")
        assert bound.select_items[0].column.alias == "company"

    def test_ambiguous_column_rejected(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT id FROM company, trades WHERE company.id = trades.company_id")

    def test_unknown_table(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT x.id FROM missing_table AS x")

    def test_unknown_column(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT c.nope FROM company AS c")

    def test_duplicate_alias_rejected(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT c.id FROM company AS c, trades AS c")

    def test_single_table_column_comparison_is_a_filter(self, stock_db):
        # Same-alias column-to-column comparisons are ordinary single-table
        # filters in the unified expression tree, not join predicates.
        bound = stock_db.parse(
            "SELECT c.id FROM company AS c, trades AS t "
            "WHERE c.id = c.id AND c.id = t.company_id"
        )
        assert len(bound.joins) == 1
        assert len(bound.filters_for("c")) == 1

    def test_multi_table_or_predicate_becomes_residual(self, stock_db):
        # A cross-table OR is a residual join filter: it cannot be pushed to
        # either scan, so it is applied at the join covering both tables.
        bound = stock_db.parse(
            "SELECT c.id FROM company AS c, trades AS t "
            "WHERE (c.symbol = 'A' OR t.venue = 'NYSE') AND c.id = t.company_id"
        )
        assert len(bound.joins) == 1
        assert len(bound.residuals) == 1
        assert set(bound.residuals[0].referenced_aliases()) == {"c", "t"}

    def test_bound_query_to_sql_roundtrip(self, stock_db):
        bound = stock_db.parse(SQL, name="demo")
        rebound = stock_db.parse(bound.to_sql(), name="demo2")
        assert rebound.aliases == bound.aliases
        assert len(rebound.joins) == len(bound.joins)
        assert len(rebound.filters_for("c")) == len(bound.filters_for("c"))

    def test_joins_between(self, stock_db):
        bound = stock_db.parse(SQL)
        assert len(bound.joins_between(["c"], ["t"])) == 1
        assert bound.joins_between(["c"], ["c"]) == []

    def test_num_tables(self, stock_db):
        assert stock_db.parse(SQL).num_tables() == 2


class TestGroupingRules:
    def test_group_keys_resolved_and_validated(self, stock_db):
        bound = stock_db.parse(
            "SELECT sector, count(*) AS n FROM company GROUP BY sector"
        )
        assert [str(c) for c in bound.group_by] == ["company.sector"]
        assert bound.select_items[0].column.alias == "company"

    def test_bare_column_not_in_group_by_rejected(self, stock_db):
        with pytest.raises(BindError, match="must appear in the GROUP BY"):
            stock_db.parse(
                "SELECT c.symbol, count(*) AS n FROM company AS c GROUP BY c.sector"
            )

    def test_star_with_group_by_rejected(self, stock_db):
        with pytest.raises(BindError, match="SELECT \\* cannot be combined"):
            stock_db.parse("SELECT * FROM company GROUP BY sector")

    def test_unknown_group_key_rejected(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT count(*) AS n FROM company GROUP BY nope")

    def test_group_key_not_projected_is_allowed(self, stock_db):
        bound = stock_db.parse("SELECT count(*) AS n FROM company GROUP BY sector")
        assert len(bound.group_by) == 1

    @pytest.mark.parametrize("func", ["sum", "avg"])
    def test_sum_avg_over_text_column_rejected(self, stock_db, func):
        # Without this check the engines would diverge (string concatenation
        # vs TypeError); numeric columns remain fine.
        with pytest.raises(BindError, match="not defined for text column"):
            stock_db.parse(f"SELECT {func}(c.symbol) AS s FROM company AS c")
        with pytest.raises(BindError, match="not defined for text column"):
            stock_db.parse(
                f"SELECT c.sector, {func}(c.symbol) AS s FROM company AS c "
                "GROUP BY c.sector"
            )
        stock_db.parse(f"SELECT {func}(t.shares) AS s FROM trades AS t")


class TestOrderByResolution:
    def test_output_name_key(self, stock_db):
        bound = stock_db.parse(
            "SELECT sector, count(*) AS n FROM company GROUP BY sector ORDER BY n DESC"
        )
        key = bound.order_by[0]
        assert (key.alias, key.column, key.ascending) == ("", "n", False)

    def test_group_key_column_key(self, stock_db):
        bound = stock_db.parse(
            "SELECT c.sector, count(*) AS n FROM company c GROUP BY c.sector "
            "ORDER BY c.sector"
        )
        assert bound.order_by[0].column == "col0"

    def test_aggregate_query_cannot_order_by_non_output(self, stock_db):
        with pytest.raises(BindError, match="must appear in the select list"):
            stock_db.parse(
                "SELECT c.sector, count(*) AS n FROM company c GROUP BY c.sector "
                "ORDER BY c.symbol"
            )

    def test_duplicate_output_name_in_order_by_is_ambiguous(self, stock_db):
        # PostgreSQL's rule: a bare ORDER BY name matching two select items
        # errors instead of silently picking one of them.
        with pytest.raises(BindError, match="ORDER BY 'n' is ambiguous"):
            stock_db.parse(
                "SELECT c.symbol AS n, count(*) AS n FROM company AS c "
                "GROUP BY c.symbol ORDER BY n DESC"
            )

    def test_duplicated_output_name_falls_back_to_base_sort_when_plain(self, stock_db):
        # Output names are unusable when duplicated, but a plain query can
        # still sort below the projection on the matched base column — the
        # query stays valid (PostgreSQL accepts it) and sorts correctly.
        bound = stock_db.parse(
            "SELECT c.symbol AS x, c.id AS x FROM company AS c ORDER BY c.symbol"
        )
        assert (bound.order_by[0].alias, bound.order_by[0].column) == ("c", "symbol")

    def test_duplicated_output_name_rejected_when_no_fallback(self, stock_db):
        # Grouped queries address outputs by name at runtime; with the name
        # duplicated there is no safe interpretation, so binding must fail.
        with pytest.raises(BindError, match="names more than one select item"):
            stock_db.parse(
                "SELECT c.symbol AS x, c.sector AS x, count(*) AS n "
                "FROM company AS c GROUP BY c.symbol, c.sector "
                "ORDER BY c.symbol"
            )

    def test_typo_in_aggregate_order_by_reports_missing_column(self, stock_db):
        # A nonexistent column must say so, not "add it to the select list".
        with pytest.raises(BindError, match="has no column 'nosuch'"):
            stock_db.parse(
                "SELECT count(c.id) AS n FROM company AS c ORDER BY c.nosuch"
            )
        with pytest.raises(BindError, match="has no column 'nosuch'"):
            stock_db.parse(
                "SELECT DISTINCT c.sector FROM company AS c ORDER BY c.nosuch"
            )

    def test_plain_query_can_order_by_unprojected_column(self, stock_db):
        bound = stock_db.parse("SELECT c.id FROM company c ORDER BY c.symbol DESC")
        key = bound.order_by[0]
        assert (key.alias, key.column, key.ascending) == ("c", "symbol", False)

    def test_distinct_requires_sort_keys_in_select_list(self, stock_db):
        with pytest.raises(BindError, match="SELECT DISTINCT"):
            stock_db.parse("SELECT DISTINCT c.id FROM company c ORDER BY c.symbol")

    def test_output_alias_plus_unprojected_key_binds_to_base_columns(self, stock_db):
        # The second key forces the sort below the projection; the alias key
        # must keep pointing at its select item's base column, not re-resolve
        # the bare name against the tables (where 'sym' does not exist).
        bound = stock_db.parse(
            "SELECT c.symbol AS sym FROM company c ORDER BY sym, c.id"
        )
        assert [(k.alias, k.column) for k in bound.order_by] == [
            ("c", "symbol"),
            ("c", "id"),
        ]

    def test_output_alias_shadowing_base_column_wins(self, stock_db):
        # 'sector' is both the AS alias of c.symbol and a real company
        # column; PostgreSQL's rule says the output alias wins.
        bound = stock_db.parse(
            "SELECT c.symbol AS sector FROM company c ORDER BY sector, c.id"
        )
        assert (bound.order_by[0].alias, bound.order_by[0].column) == ("c", "symbol")

    def test_alias_colliding_with_positional_name_sorts_on_base_column(self, stock_db):
        # 'col1' as an AS alias collides with item 1's synthetic positional
        # name, so the output name cannot be addressed at runtime; the plain
        # query falls back to sorting below the projection on the aliased
        # item's base column (c.id — the AS name wins the match).
        bound = stock_db.parse(
            "SELECT c.id AS col1, c.symbol FROM company AS c ORDER BY col1"
        )
        assert (bound.order_by[0].alias, bound.order_by[0].column) == ("c", "id")

    def test_real_column_named_colN_beats_positional_fallback(self):
        from repro.catalog import ColumnType, make_schema
        from repro.engine import Database

        db = Database()
        db.create_table(
            make_schema(
                "t", [("x", ColumnType.INT), ("col0", ColumnType.INT)]
            )
        )
        bound = db.parse("SELECT t.x, t.col0 FROM t AS t ORDER BY col0")
        # 'col0' is a real column: it must bind to select item 1 (output
        # 'col1'), not be captured by item 0's synthetic positional name.
        assert bound.order_by[0].column == "col1"
        # Without a real column of that name the positional fallback applies.
        bound = db.parse("SELECT t.x, t.col0 FROM t AS t ORDER BY col1")
        assert bound.order_by[0].column == "col1"

    def test_star_query_sorts_on_base_columns(self, stock_db):
        bound = stock_db.parse("SELECT * FROM company ORDER BY symbol")
        key = bound.order_by[0]
        assert (key.alias, key.column) == ("company", "symbol")

    def test_shaped_bound_to_sql_roundtrip(self, stock_db):
        bound = stock_db.parse(
            "SELECT DISTINCT c.sector FROM company AS c "
            "WHERE c.id > 3 ORDER BY c.sector DESC LIMIT 4 OFFSET 2"
        )
        rebound = stock_db.parse(bound.to_sql())
        assert rebound.to_sql() == bound.to_sql()
        assert rebound.distinct and rebound.limit == 4 and rebound.offset == 2
