"""Unit tests for the binder."""

import pytest

from repro.errors import BindError
from repro.sql import parse_select

SQL = """
SELECT min(c.symbol) AS sym, count(t.id) AS n
FROM company AS c, trades AS t
WHERE c.symbol = 'SYM1'
  AND t.shares > 100
  AND c.id = t.company_id;
"""


class TestBinder:
    def test_bind_splits_filters_and_joins(self, stock_db):
        bound = stock_db.binder.bind(parse_select(SQL, name="demo"))
        assert bound.name == "demo"
        assert bound.aliases == ["c", "t"]
        assert bound.table_for("c") == "company"
        assert len(bound.filters_for("c")) == 1
        assert len(bound.filters_for("t")) == 1
        assert len(bound.joins) == 1
        join = bound.joins[0]
        assert join.aliases() == ("c", "t")
        assert join.column_for("c") == "id"
        assert join.column_for("t") == "company_id"
        assert join.other("c") == ("t", "company_id")

    def test_unqualified_column_resolution(self, stock_db):
        bound = stock_db.parse("SELECT symbol FROM company WHERE symbol = 'SYM1'")
        assert bound.select_items[0].column.alias == "company"

    def test_ambiguous_column_rejected(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT id FROM company, trades WHERE company.id = trades.company_id")

    def test_unknown_table(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT x.id FROM missing_table AS x")

    def test_unknown_column(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT c.nope FROM company AS c")

    def test_duplicate_alias_rejected(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse("SELECT c.id FROM company AS c, trades AS c")

    def test_single_table_join_predicate_rejected(self, stock_db):
        # The parser already rejects same-alias column comparisons; a
        # hand-built bound query with such a join is rejected by the binder
        # (both errors share the SQLError base class).
        from repro.errors import SQLError

        with pytest.raises(SQLError):
            stock_db.parse("SELECT c.id FROM company AS c, trades AS t WHERE c.id = c.id")

    def test_or_predicate_must_stay_single_table(self, stock_db):
        with pytest.raises(BindError):
            stock_db.parse(
                "SELECT c.id FROM company AS c, trades AS t "
                "WHERE (c.symbol = 'A' OR t.venue = 'NYSE') AND c.id = t.company_id"
            )

    def test_bound_query_to_sql_roundtrip(self, stock_db):
        bound = stock_db.parse(SQL, name="demo")
        rebound = stock_db.parse(bound.to_sql(), name="demo2")
        assert rebound.aliases == bound.aliases
        assert len(rebound.joins) == len(bound.joins)
        assert len(rebound.filters_for("c")) == len(bound.filters_for("c"))

    def test_joins_between(self, stock_db):
        bound = stock_db.parse(SQL)
        assert len(bound.joins_between(["c"], ["t"])) == 1
        assert bound.joins_between(["c"], ["c"]) == []

    def test_num_tables(self, stock_db):
        assert stock_db.parse(SQL).num_tables() == 2
