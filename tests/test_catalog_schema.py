"""Unit tests for schema objects."""

import pytest

from repro.catalog import ColumnDef, ColumnType, ForeignKey, TableSchema, make_schema
from repro.errors import CatalogError


class TestColumnType:
    def test_python_types(self):
        assert ColumnType.INT.python_type() is int
        assert ColumnType.FLOAT.python_type() is float
        assert ColumnType.TEXT.python_type() is str

    def test_coerce_passthrough(self):
        assert ColumnType.INT.coerce(5) == 5
        assert ColumnType.TEXT.coerce("x") == "x"

    def test_coerce_converts(self):
        assert ColumnType.INT.coerce("7") == 7
        assert ColumnType.FLOAT.coerce(3) == 3.0
        assert ColumnType.TEXT.coerce(12) == "12"

    def test_coerce_none(self):
        assert ColumnType.INT.coerce(None) is None

    def test_coerce_failure(self):
        with pytest.raises(CatalogError):
            ColumnType.INT.coerce("not-a-number")


class TestColumnDef:
    def test_valid_name(self):
        col = ColumnDef("production_year", ColumnType.INT)
        assert col.name == "production_year"

    def test_invalid_name(self):
        with pytest.raises(CatalogError):
            ColumnDef("bad name", ColumnType.INT)

    def test_empty_name(self):
        with pytest.raises(CatalogError):
            ColumnDef("", ColumnType.TEXT)


class TestTableSchema:
    def test_make_schema(self):
        schema = make_schema(
            "movies",
            [("id", ColumnType.INT), ("title", ColumnType.TEXT)],
            primary_key="id",
        )
        assert schema.column_names == ("id", "title")
        assert schema.primary_key == "id"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            make_schema("t", [("id", ColumnType.INT), ("id", ColumnType.INT)])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(CatalogError):
            make_schema("t", [("id", ColumnType.INT)], primary_key="missing")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(CatalogError):
            make_schema(
                "t",
                [("id", ColumnType.INT)],
                foreign_keys=[("missing", "other", "id")],
            )

    def test_column_lookup(self):
        schema = make_schema("t", [("id", ColumnType.INT), ("name", ColumnType.TEXT)])
        assert schema.column("name").col_type is ColumnType.TEXT
        assert schema.column_index("name") == 1
        assert schema.has_column("id")
        assert not schema.has_column("other")

    def test_column_lookup_missing(self):
        schema = make_schema("t", [("id", ColumnType.INT)])
        with pytest.raises(CatalogError):
            schema.column("nope")
        with pytest.raises(CatalogError):
            schema.column_index("nope")

    def test_foreign_keys_recorded(self):
        schema = make_schema(
            "trades",
            [("id", ColumnType.INT), ("company_id", ColumnType.INT)],
            primary_key="id",
            foreign_keys=[("company_id", "company", "id")],
        )
        assert schema.foreign_keys == (ForeignKey("company_id", "company", "id"),)

    def test_invalid_table_name(self):
        with pytest.raises(CatalogError):
            TableSchema(name="1bad", columns=(ColumnDef("id", ColumnType.INT),))
