"""Regression pins for NULL-handling and empty-input operator edge cases.

These cases were audited while porting the executor to columnar batches
(ISSUE: "fix latent operator bug surface").  Each test runs through **both**
engines and asserts SQL semantics plus engine agreement on rows and charged
work, so a future operator change cannot silently regress one engine.
"""

from __future__ import annotations

import pytest

from repro.catalog import ColumnType, make_schema
from repro.engine import Database, ExecutionEngine
from repro.executor.batch import ColumnBatch
from repro.executor.operators import aggregate_result, join_results
from repro.executor.reference import ResultSet
from repro.executor import reference
from repro.sql.ast import AggregateFunc, Column, ColumnRef, SelectItem
from repro.sql.binder import BoundJoin

ENGINES = [ExecutionEngine.VECTORIZED, ExecutionEngine.REFERENCE]


@pytest.fixture()
def edge_db() -> Database:
    db = Database()
    db.create_table(
        make_schema(
            "t",
            [("id", ColumnType.INT), ("k", ColumnType.INT), ("v", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "u",
            [("id", ColumnType.INT), ("k", ColumnType.INT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "empty_table",
            [("id", ColumnType.INT), ("w", ColumnType.INT)],
            primary_key="id",
        )
    )
    db.load_rows("t", [(1, None, "x"), (2, None, None), (3, None, "y")])
    db.load_rows("u", [(1, 1), (2, 2)])
    db.finalize_load()
    return db


def _both(db: Database, sql: str):
    planned = db.plan(sql)
    vectorized = db.executor.execute(planned.plan)
    ref = db.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan)
    assert vectorized.total_work == ref.total_work
    assert sorted(map(repr, vectorized.result.rows)) == sorted(map(repr, ref.result.rows))
    return vectorized, ref


class TestAggregateEdgeCases:
    def test_aggregate_over_zero_rows(self, edge_db):
        vectorized, _ = _both(
            edge_db,
            "SELECT count(t.id) AS n, min(t.v) AS lo, max(t.v) AS hi "
            "FROM t WHERE t.id > 100",
        )
        assert vectorized.result.rows == [(0, None, None)]

    def test_bare_column_with_aggregate_requires_group_by(self, edge_db):
        """The old lenient mixed select list is now a parse error; grouped is ok."""
        from repro.errors import ParseError

        with pytest.raises(ParseError, match="bare column t.v"):
            edge_db.plan("SELECT t.v, count(t.id) AS n FROM t WHERE t.id > 100")
        # Grouped, zero input rows produce zero groups (standard SQL).
        vectorized, _ = _both(
            edge_db,
            "SELECT t.v, count(t.id) AS n FROM t WHERE t.id > 100 GROUP BY t.v",
        )
        assert vectorized.result.rows == []

    def test_count_skips_nulls(self, edge_db):
        vectorized, _ = _both(edge_db, "SELECT count(t.k) AS n FROM t")
        assert vectorized.result.rows == [(0,)]

    def test_min_max_skip_nulls(self, edge_db):
        vectorized, _ = _both(
            edge_db, "SELECT min(t.v) AS lo, max(t.v) AS hi FROM t"
        )
        assert vectorized.result.rows == [("x", "y")]

    def test_aggregate_over_empty_table(self, edge_db):
        vectorized, _ = _both(
            edge_db, "SELECT count(empty_table.id) AS n FROM empty_table"
        )
        assert vectorized.result.rows == [(0,)]

    def test_direct_aggregate_of_empty_input_both_engines(self):
        columns = [("t", "a")]
        items = [
            SelectItem(Column(ColumnRef("t", "a")), AggregateFunc.MIN, "lo"),
            SelectItem(Column(ColumnRef("t", "a")), AggregateFunc.COUNT, "n"),
        ]
        vectorized = aggregate_result(ColumnBatch.from_rows(columns, []), items)
        oracle = reference.aggregate_result(ResultSet(columns, []), items)
        assert vectorized.rows == oracle.rows == [(None, 0)]


class TestGroupedAggregateEdgeCases:
    """Pins for GROUP BY / new-aggregate semantics (both engines)."""

    @pytest.fixture()
    def grouped_db(self) -> Database:
        db = Database()
        db.create_table(
            make_schema(
                "m",
                [
                    ("id", ColumnType.INT),
                    ("g", ColumnType.TEXT),
                    ("x", ColumnType.INT),
                ],
                primary_key="id",
            )
        )
        # Group 'a' has values, group 'b' is all-NULL, NULL key has a value.
        db.load_rows(
            "m",
            [
                (1, "a", 4),
                (2, "a", None),
                (3, "b", None),
                (4, None, 2),
                (5, "b", None),
                (6, None, None),
            ],
        )
        db.finalize_load()
        return db

    def test_null_group_keys_form_their_own_group(self, grouped_db):
        vectorized, _ = _both(
            grouped_db, "SELECT m.g, count(*) AS n FROM m GROUP BY m.g"
        )
        assert sorted(vectorized.result.rows, key=repr) == sorted(
            [("a", 2), ("b", 2), (None, 2)], key=repr
        )

    def test_sum_avg_over_all_null_group_return_null_count_zero(self, grouped_db):
        vectorized, _ = _both(
            grouped_db,
            "SELECT m.g, sum(m.x) AS s, avg(m.x) AS a, count(m.x) AS n, "
            "count(*) AS rows_n FROM m GROUP BY m.g",
        )
        by_key = {row[0]: row[1:] for row in vectorized.result.rows}
        assert by_key["a"] == (4, 4.0, 1, 2)
        assert by_key["b"] == (None, None, 0, 2)  # all-NULL group
        assert by_key[None] == (2, 2.0, 1, 2)  # NULL key still aggregates

    def test_sum_avg_over_empty_input_return_null_count_zero(self, grouped_db):
        vectorized, _ = _both(
            grouped_db,
            "SELECT sum(m.x) AS s, avg(m.x) AS a, count(m.x) AS n, count(*) AS r "
            "FROM m WHERE m.id > 100",
        )
        assert vectorized.result.rows == [(None, None, 0, 0)]

    def test_sum_of_negative_zero_keeps_its_sign_on_both_engines(self):
        """IEEE signed zeros: seeding SUM from the first value, not int 0."""
        import math

        db = Database()
        db.create_table(
            make_schema("f", [("id", ColumnType.INT), ("x", ColumnType.FLOAT)])
        )
        db.load_rows("f", [(1, -0.0), (2, -0.0)])
        db.finalize_load()
        planned = db.plan("SELECT sum(f.x) AS s, avg(f.x) AS a FROM f")
        vectorized = db.executor.execute(planned.plan).result.rows
        ref = db.executor_for(ExecutionEngine.REFERENCE).execute(planned.plan).result.rows
        assert vectorized == ref
        assert math.copysign(1.0, vectorized[0][0]) == -1.0
        assert math.copysign(1.0, ref[0][0]) == -1.0

    def test_grouped_query_over_empty_input_has_zero_groups(self, grouped_db):
        vectorized, _ = _both(
            grouped_db,
            "SELECT m.g, sum(m.x) AS s FROM m WHERE m.id > 100 GROUP BY m.g",
        )
        assert vectorized.result.rows == []


class TestOrderByLimitEdgeCases:
    """Pins for deterministic NULL placement and LIMIT/OFFSET bounds."""

    @pytest.fixture()
    def ordered_db(self) -> Database:
        db = Database()
        db.create_table(
            make_schema(
                "o",
                [("id", ColumnType.INT), ("x", ColumnType.INT)],
                primary_key="id",
            )
        )
        db.load_rows("o", [(1, 5), (2, None), (3, 1), (4, None), (5, 3)])
        db.finalize_load()
        return db

    def test_order_by_asc_puts_nulls_last(self, ordered_db):
        vectorized, _ = _both(ordered_db, "SELECT o.id FROM o ORDER BY o.x ASC")
        # NULLS LAST, and ties (both NULL) keep input order: 2 before 4.
        assert list(vectorized.result.rows) == [(3,), (5,), (1,), (2,), (4,)]

    def test_order_by_desc_puts_nulls_first(self, ordered_db):
        vectorized, _ = _both(ordered_db, "SELECT o.id FROM o ORDER BY o.x DESC")
        assert list(vectorized.result.rows) == [(2,), (4,), (1,), (5,), (3,)]

    def test_limit_zero_is_empty(self, ordered_db):
        vectorized, _ = _both(
            ordered_db, "SELECT o.id FROM o ORDER BY o.id LIMIT 0"
        )
        assert vectorized.result.rows == []

    def test_offset_past_the_end_is_empty(self, ordered_db):
        vectorized, _ = _both(
            ordered_db, "SELECT o.id FROM o ORDER BY o.id LIMIT 3 OFFSET 99"
        )
        assert vectorized.result.rows == []

    def test_limit_overshooting_returns_all_remaining(self, ordered_db):
        vectorized, _ = _both(
            ordered_db, "SELECT o.id FROM o ORDER BY o.id LIMIT 99 OFFSET 3"
        )
        assert list(vectorized.result.rows) == [(4,), (5,)]

    def test_distinct_keeps_first_occurrence_order(self, ordered_db):
        vectorized, _ = _both(ordered_db, "SELECT DISTINCT o.x FROM o")
        assert list(vectorized.result.rows) == [(5,), (None,), (1,), (3,)]


class TestJoinEdgeCases:
    def test_join_on_all_null_key_column_is_empty(self, edge_db):
        vectorized, _ = _both(
            edge_db, "SELECT count(t.id) AS n FROM t, u WHERE t.k = u.k"
        )
        assert vectorized.result.rows == [(0,)]

    def test_join_with_empty_input_is_empty(self, edge_db):
        vectorized, _ = _both(
            edge_db,
            "SELECT count(empty_table.id) AS n FROM empty_table, u "
            "WHERE empty_table.w = u.k",
        )
        assert vectorized.result.rows == [(0,)]

    def test_null_keys_never_match_null_keys(self):
        """NULL = NULL is not a match, in either engine, on either side."""
        columns_left = [("l", "k")]
        columns_right = [("r", "k")]
        rows_left = [(None,), (1,), (None,)]
        rows_right = [(None,), (1,), (2,)]
        join = [BoundJoin("l", "k", "r", "k")]
        vectorized = join_results(
            ColumnBatch.from_rows(columns_left, rows_left),
            ColumnBatch.from_rows(columns_right, rows_right),
            join,
        )
        oracle = reference.join_results(
            ResultSet(columns_left, rows_left), ResultSet(columns_right, rows_right), join
        )
        assert vectorized.rows == oracle.rows == [(1, 1)]

    def test_join_of_two_empty_inputs(self):
        join = [BoundJoin("l", "k", "r", "k")]
        vectorized = join_results(
            ColumnBatch.from_rows([("l", "k")], []),
            ColumnBatch.from_rows([("r", "k")], []),
            join,
        )
        assert len(vectorized) == 0
        assert vectorized.rows == []


class TestFilterNullEdgeCases:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            # <> never matches NULL.
            ("SELECT t.id FROM t WHERE t.k <> 5", []),
            # IN never matches NULL.
            ("SELECT t.id FROM t WHERE t.k IN (1, 2)", []),
            # BETWEEN never matches NULL.
            ("SELECT t.id FROM t WHERE t.k BETWEEN 0 AND 10", []),
            # NOT LIKE never matches NULL (t.v of row 2 is NULL).
            ("SELECT t.id FROM t WHERE t.v NOT LIKE 'z%'", [(1,), (3,)]),
            # IS NULL / IS NOT NULL are the only NULL-selecting predicates.
            ("SELECT t.id FROM t WHERE t.v IS NULL", [(2,)]),
            ("SELECT t.id FROM t WHERE t.v IS NOT NULL", [(1,), (3,)]),
        ],
    )
    def test_null_filter_semantics(self, edge_db, sql, expected):
        vectorized, _ = _both(edge_db, sql)
        assert sorted(vectorized.result.rows) == expected

    def test_projection_preserves_nulls(self, edge_db):
        vectorized, _ = _both(edge_db, "SELECT t.v FROM t")
        assert list(vectorized.result.rows) == [("x",), (None,), ("y",)]

    def test_index_in_scan_with_duplicate_keys(self, edge_db):
        """Duplicate IN keys must not double-fetch (work stays deduplicated)."""
        vectorized, _ = _both(
            edge_db, "SELECT count(u.id) AS n FROM u WHERE u.id IN (1, 1, 2)"
        )
        assert vectorized.result.rows == [(2,)]


class TestZeroCopyScanSafety:
    def test_scan_batch_is_stable_if_table_grows(self, edge_db):
        """A scan batch wraps storage zero-copy; later inserts must not leak in.

        This hazard is introduced by the columnar engine (the reference
        engine copies rows eagerly), so the batch bounds every read by the
        length captured at scan time.
        """
        from repro.executor.operators import scan_table

        batch, fetched = scan_table(edge_db.catalog, "u", "u", [])
        assert fetched == 2
        edge_db.catalog.table("u").insert_row((3, 7))
        assert len(batch) == 2
        assert batch.column_values("u", "id") == [1, 2]
        assert batch.rows == [(1, 1), (2, 2)]


class TestColumnWiseLoadRollback:
    def test_failed_bulk_load_leaves_no_ragged_columns(self):
        from repro.errors import StorageError
        from repro.catalog.schema import ColumnDef, TableSchema
        from repro.storage.table import Table

        schema = TableSchema(
            name="strict",
            columns=(
                ColumnDef("a", ColumnType.INT),
                ColumnDef("b", ColumnType.INT, nullable=False),
            ),
        )
        table = Table(schema)
        table.insert_row((1, 10))
        with pytest.raises(StorageError):
            table.load_columns([[2, 3], [20, None]])  # NULL into non-nullable b
        assert table.row_count == 1
        assert table.column_values("a") == [1]
        assert table.column_values("b") == [10]
        # The table stays fully usable after the rolled-back load.
        table.load_columns([[2], [20]])
        assert table.row(1) == (2, 20)

    def test_failed_coercion_rolls_back_too(self):
        from repro.catalog.schema import ColumnDef, TableSchema
        from repro.errors import CatalogError
        from repro.storage.table import Table

        schema = TableSchema(
            name="ints",
            columns=(ColumnDef("a", ColumnType.INT), ColumnDef("b", ColumnType.INT)),
        )
        table = Table(schema)
        with pytest.raises(CatalogError):
            table.load_columns([[1, 2, 3], [1, "xx", 3]])  # 'xx' fails coercion
        assert table.row_count == 0
        assert table.column_values("a") == []
        assert table.column_values("b") == []
        table.insert_row((9, 9))
        assert table.row(0) == (9, 9)


class TestTempTableFromBatch:
    def test_materialize_batch_with_nulls_column_wise(self, edge_db):
        planned = edge_db.plan("SELECT t.id, t.v FROM t")
        execution = edge_db.executor.execute(planned.plan)
        table = edge_db.create_temp_table_from_result(
            "__edge_temp",
            execution.result,
            [(("", "col0"), "id"), (("", "col1"), "v")],
        )
        assert table.row_count == 3
        assert table.column_values("v") == ["x", None, "y"]
        edge_db.drop_table("__edge_temp")
