"""Unit tests for the join graph."""

from repro.optimizer import JoinGraph
from repro.sql import QueryBuilder


def chain_query(n=4):
    """t1 - t2 - t3 - ... chain query over the stocks schema-ish tables."""
    builder = QueryBuilder(name="chain")
    for i in range(n):
        builder.add_table("company", f"t{i}")
    for i in range(n - 1):
        builder.add_join(f"t{i}", "id", f"t{i+1}", "id")
    return builder.build()


def star_query():
    """Star around ``t`` with three satellites."""
    builder = QueryBuilder(name="star")
    builder.add_table("title", "t")
    for alias in ("a", "b", "c"):
        builder.add_table("movie_keyword", alias)
        builder.add_join("t", "id", alias, "movie_id")
    return builder.build()


class TestJoinGraph:
    def test_neighbors_and_degree(self):
        graph = JoinGraph(star_query())
        assert graph.neighbors("t") == {"a", "b", "c"}
        assert graph.degree("t") == 3
        assert graph.degree("a") == 1

    def test_edges(self):
        graph = JoinGraph(chain_query(3))
        assert graph.edges() == [("t0", "t1"), ("t1", "t2")]

    def test_is_connected(self):
        graph = JoinGraph(star_query())
        assert graph.is_connected({"t", "a"})
        assert graph.is_connected({"t", "a", "b", "c"})
        assert not graph.is_connected({"a", "b"})
        assert not graph.is_connected(set())
        assert graph.is_connected({"a"})

    def test_connects(self):
        graph = JoinGraph(star_query())
        assert graph.connects({"t"}, {"a"})
        assert not graph.connects({"a"}, {"b"})

    def test_connected_components(self):
        graph = JoinGraph(chain_query(4))
        components = graph.connected_components()
        assert len(components) == 1
        assert components[0] == {"t0", "t1", "t2", "t3"}

    def test_connected_subsets_of_size(self):
        graph = JoinGraph(chain_query(4))
        pairs = graph.connected_subsets_of_size(2)
        assert len(pairs) == 3  # chain of 4 has 3 adjacent pairs
        triples = graph.connected_subsets_of_size(3)
        assert len(triples) == 2
        assert graph.connected_subsets_of_size(0) == []
        assert graph.connected_subsets_of_size(9) == []

    def test_connected_subsets_star(self):
        graph = JoinGraph(star_query())
        # Star with 3 satellites: pairs = 3 (each satellite with hub).
        assert len(graph.connected_subsets_of_size(2)) == 3
        # Triples: hub + any 2 satellites = C(3,2) = 3.
        assert len(graph.connected_subsets_of_size(3)) == 3
        assert len(graph.connected_subsets_up_to(2)) == 4 + 3

    def test_joins_between_sets(self):
        graph = JoinGraph(star_query())
        joins = graph.joins_between_sets({"t", "a"}, {"b"})
        assert len(joins) == 1

    def test_to_dot_and_text(self):
        graph = JoinGraph(star_query())
        dot = graph.to_dot()
        assert "graph star" in dot
        assert "t -- " in dot or "a -- " in dot
        text = graph.to_text()
        assert "join graph of star" in text
