"""Figure 8: perfect-(n) with and without re-optimization.

Paper claim: re-optimization keeps improving execution time on top of
perfect-(n) until about n = 5, after which the residual estimation errors are
too small for re-optimization to pay off (and it may add a small overhead).
"""

from repro.bench.experiments import figure8

from conftest import print_experiment

NS = (0, 1, 2, 3, 4, 5, 6, 8, 10, 13, 17)


def test_fig8_perfect_n_with_and_without_reopt(benchmark, context):
    result = benchmark.pedantic(
        figure8, args=(context,), kwargs={"ns": NS}, rounds=1, iterations=1
    )
    print_experiment(result)

    rows = {row[0]: row for row in result.rows}
    # Re-optimization helps substantially when estimates are poor (small n)...
    assert rows[0][2] < rows[0][1] * 0.75
    assert rows[1][2] < rows[1][1] * 0.9
    # ...and stops mattering once estimates are close to perfect: the
    # difference at n=17 stays within a modest overhead factor.
    assert rows[17][2] <= rows[17][1] * 1.5 + 0.5
    # Both series improve overall from n=0 to n=17.
    assert rows[17][1] < rows[0][1]
    assert rows[17][2] < rows[0][2] * 1.2
