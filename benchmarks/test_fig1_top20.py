"""Figure 1: planning + execution time of the top-20 longest queries.

Paper claim: perfect-(3) achieves no improvement for these queries, while
perfect-(4) and re-optimization improve end-to-end latency substantially
(~25-27%), and re-optimization realizes most of the benefit of perfect
estimates.  Our engine reproduces the ordering (PostgreSQL slowest, perfect
fastest, re-optimized close to perfect); the magnitudes differ because the
substrate is a simulator (see EXPERIMENTS.md).
"""

from repro.bench.experiments import figure1

from conftest import print_experiment


def test_fig1_top20_longest_queries(benchmark, context, recorder):
    result = benchmark.pedantic(figure1, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    totals = {row[0]: row[3] for row in result.rows}
    execs = {row[0]: row[1] for row in result.rows}

    # Headline metrics for the CI trajectory gate.  Simulated seconds and
    # step counts are deterministic per scale and gated; wall-clock
    # throughput varies across runners and is informational.
    recorder.record("fig1.postgres_exec_s", execs["PostgreSQL"], direction="lower")
    recorder.record("fig1.reopt_exec_s", execs["Re-optimized"], direction="lower")
    recorder.record("fig1.perfect_exec_s", execs["Perfect"], direction="lower")
    improvement = 100.0 * (execs["PostgreSQL"] - execs["Re-optimized"]) / execs["PostgreSQL"]
    recorder.record("fig1.reopt_improvement_pct", improvement, direction="higher")
    recorder.record(
        "fig1.reopt_steps_total",
        result.metadata["reopt_steps_total"],
        direction="info",
    )
    recorder.record(
        "bench.rows_per_second",
        result.metadata["rows_per_second"],
        direction="info",
    )
    # The baseline is the slowest; perfect estimates are the fastest.
    assert totals["PostgreSQL"] == max(totals.values())
    assert execs["Perfect"] == min(execs.values())
    # Re-optimization lands between the baseline and perfect estimates and
    # captures at least half of the achievable improvement in execution time.
    assert execs["Perfect"] <= execs["Re-optimized"] < execs["PostgreSQL"]
    achievable = execs["PostgreSQL"] - execs["Perfect"]
    achieved = execs["PostgreSQL"] - execs["Re-optimized"]
    assert achieved >= 0.5 * achievable
    # Perfect-(4) is at least as good as perfect-(3) for the longest queries.
    assert execs["Perfect-(4)"] <= execs["Perfect-(3)"] * 1.05
