"""Table II: per-query runtime with default estimates relative to perfect-(17).

Paper claim: most queries run within 2x of the perfect-estimate plan, but a
minority (the ">5x" bucket) is dramatically slower and dominates the
workload gap.  We assert the same bimodal structure.
"""

from repro.bench.experiments import table2

from conftest import print_experiment


def test_table2_relative_runtime(benchmark, context):
    result = benchmark.pedantic(table2, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    counts = dict(zip(result.column("relative_runtime"), result.column("num_queries")))
    total = sum(counts.values())
    assert total == len(context.job_queries)
    # A substantial fraction of queries is already near-optimal...
    assert counts["0.8 - 1.2"] >= total * 0.25
    # ...but a non-trivial tail is more than 5x slower than perfect.
    assert counts["> 5.0"] >= 5
