"""Shared fixtures for the benchmark suite.

The benchmarks reproduce the paper's tables and figures on the synthetic
workload.  A single session-scoped context is shared by all benchmark
modules so that regimes evaluated by several experiments (the baseline,
perfect-(17), re-optimization at threshold 32) are paid for once.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default 0.4).
* ``REPRO_BENCH_QUERY_LIMIT`` — optionally restrict the workload to the first
  N queries for quick smoke runs.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_context


@pytest.fixture(scope="session")
def context():
    """The shared workload context used by every benchmark module."""
    return build_context()


def print_experiment(result) -> None:
    """Print an experiment artifact (pytest -s shows it; captured otherwise)."""
    print()
    print(result.to_text())
