"""Shared fixtures for the benchmark suite.

The benchmarks reproduce the paper's tables and figures on the synthetic
workload.  A single session-scoped context is shared by all benchmark
modules so that regimes evaluated by several experiments (the baseline,
perfect-(17), re-optimization at threshold 32) are paid for once.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default 0.4).
* ``REPRO_BENCH_QUERY_LIMIT`` — optionally restrict the workload to the first
  N queries for quick smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import build_context, env_query_limit, env_scale
from repro.bench.reporting import BenchmarkRecorder

#: When set, the session recorder writes the headline metrics here as JSON
#: (the CI benchmark job sets it to ``BENCH_pr.json`` and compares the file
#: against the checked-in ``BENCH_baseline.json``).
BENCH_REPORT_ENV_VAR = "REPRO_BENCH_REPORT"


@pytest.fixture(scope="session")
def context():
    """The shared workload context used by every benchmark module."""
    return build_context()


@pytest.fixture(scope="session")
def recorder():
    """Session-wide benchmark-trajectory recorder (see reporting module).

    Benchmarks record headline metrics on it; at session end the report is
    written to ``$REPRO_BENCH_REPORT`` (skipped when the variable is unset,
    so plain local runs leave no files behind).
    """
    rec = BenchmarkRecorder()
    rec.meta["scale"] = env_scale()
    limit = env_query_limit()
    if limit is not None:
        rec.meta["query_limit"] = limit
    yield rec
    path = os.environ.get(BENCH_REPORT_ENV_VAR)
    if path and rec.metrics:
        rec.write(path)
        print(f"\nbenchmark trajectory report written to {path}")


def print_experiment(result) -> None:
    """Print an experiment artifact (pytest -s shows it; captured otherwise)."""
    print()
    print(result.to_text())


def measure_speedup(
    experiment_id: str,
    title: str,
    executors,
    plan,
    best_of: int = 5,
):
    """Interleaved best-of-N wall-clock comparison of executors on one plan.

    Rounds are interleaved across executors so a load spike on a shared
    runner degrades every engine's rounds alike instead of biasing whichever
    engine happened to run during the spike.  Returns ``(executions, result)``
    where ``executions`` holds each executor's best run (in input order) and
    ``result`` is the printed :class:`ExperimentResult` with the speedup of
    the first executor over the second in ``metadata['speedup']``.
    """
    from repro.bench.reporting import ExperimentResult

    best = [None] * len(executors)
    for _ in range(best_of):
        for i, executor in enumerate(executors):
            execution = executor.execute(plan)
            if best[i] is None or execution.wall_seconds < best[i].wall_seconds:
                best[i] = execution

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"{title} (best of {best_of})",
        headers=[
            "engine",
            "rows_processed",
            "wall_ms",
            "rows_per_sec",
            "charged_work",
        ],
    )
    for execution in best:
        result.add_row(
            execution.engine.value,
            execution.rows_processed,
            execution.wall_seconds * 1e3,
            execution.rows_per_second,
            execution.total_work,
        )
    speedup = best[0].rows_per_second / max(best[1].rows_per_second, 1e-12)
    result.metadata["speedup"] = speedup
    result.metadata["vectorized_rows_per_sec"] = best[0].rows_per_second
    result.metadata["reference_rows_per_sec"] = best[1].rows_per_second
    return best, result
