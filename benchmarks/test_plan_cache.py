"""Micro-benchmark guard: prepared re-execution skips planning via the cache.

A repeated JOB query served through a prepared statement must hit the
connection's plan cache on re-execution, and the cached plan stage must be
at least 10x faster (wall-clock, best of N) than a cold plan — the planning
component is what the cache removes.  Simulated planning time on a hit is
exactly zero by construction; that is asserted too.
"""

from __future__ import annotations

import os

from conftest import print_experiment

from repro.bench.reporting import ExperimentResult
from repro.engine import connect
from repro.sql import parameterize

# The acceptance floor is 10x; REPRO_PLAN_CACHE_FLOOR exists so noisy shared
# runners can lower the gate without editing code (never raise it in CI).
CACHE_SPEEDUP_FLOOR = float(os.environ.get("REPRO_PLAN_CACHE_FLOOR", "10.0"))
BEST_OF = 5


def test_prepared_plan_cache_speedup(context):
    # The widest workload query: join enumeration dominates its plan stage,
    # which is exactly the work a cache hit must skip.
    job = max(context.job_queries, key=lambda q: q.num_tables)
    bound = context.database.parse(job.sql, name=job.name)
    template, values = parameterize(bound)

    connection = connect(context.database, reoptimize=False)
    statement = connection.prepare(template.to_sql(), name=job.name)

    cold_seconds = []
    for _ in range(BEST_OF):
        connection.plan_cache.clear()
        cursor = statement.execute(values)
        assert not cursor.context.plan_cached
        cold_seconds.append(cursor.context.stage_seconds["plan"])

    baseline = statement.execute(values)
    assert baseline.context.plan_cached  # warm from the last cold run
    expected_rows = baseline.fetchall()
    warm_seconds = []
    for _ in range(BEST_OF):
        cursor = statement.execute(values)
        assert cursor.context.plan_cached
        assert cursor.context.planning_seconds == 0.0
        assert cursor.fetchall() == expected_rows
        warm_seconds.append(cursor.context.stage_seconds["plan"])

    cold = min(cold_seconds)
    warm = min(warm_seconds)
    speedup = cold / warm if warm > 0 else float("inf")

    result = ExperimentResult(
        experiment_id="plan-cache",
        title=f"plan stage: cold optimizer vs cache hit on {job.name} "
        f"({job.num_tables} tables, best of {BEST_OF})",
        headers=["path", "plan_seconds", "speedup"],
    )
    result.add_row("cold plan", f"{cold:.6f}", "1.0x")
    result.add_row("cache hit", f"{warm:.6f}", f"{speedup:.1f}x")
    result.add_note(
        f"cache stats: {connection.cache_stats.hits} hit(s), "
        f"{connection.cache_stats.misses} miss(es)"
    )
    print_experiment(result)

    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached plan stage only {speedup:.1f}x faster than cold "
        f"(floor {CACHE_SPEEDUP_FLOOR}x)"
    )
