"""Micro-benchmark guard: morsel-parallel engine vs serial vectorized.

The scan analogue of ``test_engine_speedup.py`` for the morsel-driven
engine: a scan-heavy predicate over the stocks trades table (arithmetic,
modulo and three conjuncts — exactly the shape the fused filter kernel
compiles into one single-pass loop) must run at least 2x the operator
throughput of the serial vectorized engine at 4 workers, while charging
bit-identical work and producing identical rows.  The speedup comes from
the fused kernel replacing one list-materializing pass per expression node
with a single compiled loop; the morsel split on top keeps the gain at any
worker count (determinism at workers 1/2/8 is pinned functionally in
``tests/test_executor_parallel.py``).
"""

from __future__ import annotations

import os

from conftest import measure_speedup, print_experiment

from repro.engine import ExecutionEngine
from repro.workloads.stocks import StocksConfig, build_stocks_database

# The acceptance floor is 2x; REPRO_PARALLEL_SPEEDUP_FLOOR exists so noisy
# shared runners can lower the gate without editing code (never raise it in
# CI).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_PARALLEL_SPEEDUP_FLOOR", "2.0"))

PARALLEL_WORKERS = 4

SCAN_HEAVY_SQL = (
    "SELECT count(t.id) AS n FROM trades AS t "
    "WHERE (t.shares * 3 - t.company_id) % 7 < 3 "
    "AND t.shares + t.company_id > 1000 "
    "AND t.shares * 2 - 1 <> 5"
)


def test_parallel_engine_speedup_on_scan_heavy_query(recorder):
    db = build_stocks_database(StocksConfig())
    planned = db.plan(SCAN_HEAVY_SQL)
    scans = [n for n in planned.plan.walk() if n.label().startswith("Seq Scan")]
    assert scans and scans[0].filters, "expected a filtered sequential scan"

    (parallel, vectorized), result = measure_speedup(
        "parallel-speedup",
        f"morsel-parallel ({PARALLEL_WORKERS} workers) vs serial vectorized, "
        "scan-heavy stocks query",
        [
            db.executor_for(ExecutionEngine.PARALLEL, workers=PARALLEL_WORKERS),
            db.executor_for(ExecutionEngine.VECTORIZED),
        ],
        planned.plan,
    )

    # Guard 1: charged work and results are engine-invariant, and the scan
    # really did split into morsels across the worker pool.
    assert parallel.total_work == vectorized.total_work
    assert parallel.rows_processed == vectorized.rows_processed
    assert parallel.result.rows == vectorized.result.rows
    split = [m for m in parallel.node_metrics.values() if (m.morsels or 0) > 1]
    assert split, "expected the scan to split into multiple morsels"

    speedup = result.metadata["speedup"]
    result.add_note(f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR}x)")
    print_experiment(result)
    recorder.record("parallel.scan_speedup", speedup, direction="higher")
    recorder.record(
        "parallel.rows_per_sec",
        # measure_speedup names its metadata after the canonical engine
        # pair; the first executor here is the parallel one.
        result.metadata["vectorized_rows_per_sec"],
        direction="info",
    )
    recorder.record(
        "parallel.workers", PARALLEL_WORKERS, direction="info"
    )

    # Guard 2: the morsel engine with fused kernels is measurably faster.
    assert speedup >= SPEEDUP_FLOOR, (
        f"parallel engine only {speedup:.2f}x faster than serial vectorized "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
