"""Figure 7: workload time vs re-optimization threshold (Q-error).

Paper claims: (a) even a threshold of 2 only modestly increases planning time
while cutting execution time; (b) the best execution time is around a
threshold of a few tens (the paper picks 32); (c) very large thresholds
converge back to the no-re-optimization baseline.
"""

from repro.bench.experiments import figure7

from conftest import print_experiment

THRESHOLDS = (2, 4, 8, 16, 32, 64, 128, 512, 2048, 16384)


def test_fig7_threshold_sweep(benchmark, context):
    result = benchmark.pedantic(
        figure7, args=(context,), kwargs={"thresholds": THRESHOLDS}, rounds=1, iterations=1
    )
    print_experiment(result)

    rows = {row[0]: row for row in result.rows}
    pg_exec = rows["PG"][1]
    perfect_exec = rows["Perfect"][1]
    best_threshold_exec = min(rows[t][1] for t in THRESHOLDS)
    exec_at_32 = rows[32][1]
    exec_at_2 = rows[2][1]
    exec_at_max = rows[16384][1]

    # Re-optimization at moderate thresholds beats the baseline clearly and
    # sits between the baseline and perfect estimates.
    assert exec_at_32 < pg_exec * 0.7
    assert exec_at_32 >= perfect_exec * 0.9
    # A very aggressive threshold is not catastrophically worse than the best.
    assert exec_at_2 <= best_threshold_exec * 1.6
    # ... but it plans more (re-planning rounds are charged).
    assert rows[2][2] >= rows[16384][2]
    # A huge threshold approaches the no-re-optimization baseline.
    assert exec_at_max >= 0.6 * pg_exec
