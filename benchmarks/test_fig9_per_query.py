"""Figure 9: per-query execution time, baseline vs re-optimized vs perfect.

Paper claims: re-optimization barely changes the short queries, dramatically
improves many of the longest queries (capturing much of the benefit of
perfect estimates for the whole workload), and in a few cases makes an
individual query worse — a risk the paper calls out explicitly.
"""

from repro.bench.experiments import figure9

from conftest import print_experiment


def test_fig9_per_query_comparison(benchmark, context):
    result = benchmark.pedantic(figure9, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    totals = result.metadata["totals"]
    # Whole-workload ordering: perfect <= re-optimized < baseline.
    assert totals["perfect"] <= totals["reopt"]
    assert totals["reopt"] < totals["postgres"]
    # Re-optimization captures at least half of the achievable improvement.
    achievable = totals["postgres"] - totals["perfect"]
    achieved = totals["postgres"] - totals["reopt"]
    assert achieved >= 0.5 * achievable
    # Rows are ordered by baseline execution time (the paper's x-axis).
    baseline = result.column("postgres_s")
    assert baseline == sorted(baseline)
