"""Figure 2: total planning + execution time of the workload vs perfect-(n).

Paper claim: perfect estimates on base tables, pairs and triples give little
benefit; the workload only speeds up markedly once estimates for joins of
four or more tables are perfect, and perfect-(17) halves execution time.
Our reproduction preserves the monotone-decreasing series and the fact that
base-table-only perfection (n=1) gives almost no benefit.
"""

from repro.bench.experiments import figure2

from conftest import print_experiment


def test_fig2_perfect_n_sweep(benchmark, context):
    result = benchmark.pedantic(figure2, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    ns = result.column("perfect_n")
    execs = result.column("execute_s")
    totals = result.column("total_s")
    assert ns == list(range(0, 18))
    # Perfect base-table estimates alone barely move the needle (<=15% gain).
    assert execs[1] >= 0.85 * execs[0] * 0.85 or execs[1] >= 0.7 * execs[0]
    # The series is (weakly) improving as n grows, allowing small noise.
    assert execs[17] < execs[0]
    for earlier, later in zip(execs[:-1], execs[1:]):
        assert later <= earlier * 1.15
    # Perfect estimates at least halve workload execution time.
    assert execs[17] <= 0.5 * execs[0]
    assert all(total >= execution for total, execution in zip(totals, execs))
