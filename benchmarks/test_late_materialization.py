"""Micro-benchmark guard: late-materializing scans vs classic gather-then-filter.

A wide (20-column) range-partitioned, compressed table answers a selective
two-column query two ways:

* **late-materialized** — the engine as shipped: projection pushdown
  (``Columns: 4/20 read``), the dictionary conjunct evaluated once per
  dictionary entry in the code domain, sealed block synopses skipping
  provably dead row blocks, and only the surviving rows' projected columns
  decoded;
* **classic** — the pre-late-materialization scan, reproduced here from the
  same public pieces: prune partitions, gather *every* column of every
  surviving shard into a full-width batch, then filter with the batch
  conjunction.

Both sides must produce identical rows; the late-materialized side must be
at least 3x faster end to end (it runs the whole plan, aggregation
included, while the classic side is charged for the scan alone — the gate
is conservative).
"""

from __future__ import annotations

import os
import random
import time

from conftest import print_experiment

from repro.bench.reporting import ExperimentResult
from repro.catalog import ColumnDef, ColumnType, PartitionSpec, TableSchema
from repro.engine import Database
from repro.executor.batch import ColumnBatch
from repro.executor.expressions import compile_batch_conjunction
from repro.optimizer.plan import ScanNode
from repro.optimizer.pruning import prune_partitions

# The acceptance floor is 3x; REPRO_LATE_MAT_SPEEDUP_FLOOR exists so noisy
# shared runners can lower the gate without editing code (never raise it in
# CI).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_LATE_MAT_SPEEDUP_FLOOR", "3.0"))

NUM_ROWS = 160_000
NUM_SHARDS = 8
WIDTH = 20  # id + cat + 2 selected payloads + 16 riders
NEEDLE_EVERY = 400  # one row in 400 carries the needle category

#: Touches 4/20 columns (id, cat, a1, a17); the id range keeps shards 1-5
#: (3 of 8 pruned), the dictionary-encoded needle does the heavy filtering.
SQL = (
    "SELECT t.a1 AS a1, t.a17 AS a17 FROM wide AS t "
    "WHERE t.id BETWEEN 30000 AND 109999 AND t.cat = 'needle'"
)

BEST_OF = 5


def build_database() -> Database:
    """One wide compressed table, range-partitioned on ``id``."""
    columns = [
        ColumnDef("id", ColumnType.INT, nullable=False),
        ColumnDef("cat", ColumnType.TEXT),
    ]
    columns += [ColumnDef(f"a{i}", ColumnType.TEXT) for i in range(1, WIDTH - 1)]
    step = NUM_ROWS // NUM_SHARDS
    schema = TableSchema(
        name="wide",
        columns=tuple(columns),
        primary_key="id",
        partition_spec=PartitionSpec(
            method="range",
            column="id",
            bounds=tuple(range(step, NUM_ROWS, step)),
        ),
    )
    rng = random.Random(20190408)
    rows = []
    for i in range(NUM_ROWS):
        cat = "needle" if i % NEEDLE_EVERY == 7 else f"common{rng.randrange(6)}"
        rows.append(
            (i, cat) + tuple(f"tag{(i + j) % 7}" for j in range(1, WIDTH - 1))
        )
    db = Database()
    db.create_table(schema)
    db.load_rows("wide", rows)
    db.finalize_load()
    db.catalog.table("wide").compress()
    return db


def classic_scan(table, scan: ScanNode) -> ColumnBatch:
    """The pre-late-materialization scan: full-width gather, then filter."""
    filters = list(scan.filters)
    pruned, _ = prune_partitions(table, filters)
    pruned_set = set(pruned)
    data = [[] for _ in table.schema.columns]
    for index, partition in enumerate(table.partitions()):
        if index in pruned_set:
            continue
        for position, values in enumerate(partition.column_data()):
            data[position].extend(values)
    qualified = [(scan.alias, name) for name in table.schema.column_names]
    batch = ColumnBatch(qualified, data, length=len(data[0]))
    predicate = compile_batch_conjunction(filters, batch.resolver)
    if predicate is not None:
        batch = batch.restrict(predicate(batch))
    return batch


def test_late_materialization_speedup(recorder):
    db = build_database()
    table = db.catalog.table("wide")

    # Guard 1: the plan advertises the narrowed scan and the partial prune.
    explain = db.explain(SQL)
    assert f"Columns: 4/{WIDTH} read" in explain, explain
    assert f"Partitions: 5/{NUM_SHARDS} scanned" in explain, explain

    planned = db.plan(SQL)
    scan = next(
        node for node in planned.plan.walk() if isinstance(node, ScanNode)
    )

    late = None
    classic_seconds = float("inf")
    classic_batch = None
    # Interleaved best-of-N so a load spike on a shared runner degrades both
    # sides alike.
    for _ in range(BEST_OF):
        execution = db.executor.execute(planned.plan)
        if late is None or execution.wall_seconds < late.wall_seconds:
            late = execution
        start = time.perf_counter()
        batch = classic_scan(table, scan)
        elapsed = time.perf_counter() - start
        if elapsed < classic_seconds:
            classic_seconds = elapsed
            classic_batch = batch

    # Guard 2: late materialization never changes the answer.
    expected = list(
        zip(
            classic_batch.column_values("t", "a1"),
            classic_batch.column_values("t", "a17"),
        )
    )
    assert late.result.rows == expected

    metrics = late.node_metrics[scan.node_id]
    speedup = classic_seconds / max(late.wall_seconds, 1e-12)
    result = ExperimentResult(
        experiment_id="late-materialization-speedup",
        title=(
            f"late-materialized scan (4/{WIDTH} columns, compressed-domain "
            f"filters, block skipping) vs classic full-width gather "
            f"(best of {BEST_OF})"
        ),
        headers=["scan", "rows_out", "wall_ms"],
    )
    result.add_row("late-materialized", len(late.result.rows), late.wall_seconds * 1e3)
    result.add_row("classic full-width", len(expected), classic_seconds * 1e3)
    result.metadata["speedup"] = speedup
    result.add_note(
        f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR}x); "
        f"segments_skipped={metrics.segments_skipped} "
        f"columns_decoded={metrics.columns_decoded}/{WIDTH}"
    )
    print_experiment(result)
    recorder.record("scan.late_materialization_speedup", speedup, direction="higher")
    recorder.record("scan.columns_read", len(scan.columns), direction="info")
    recorder.record(
        "scan.segments_skipped", metrics.segments_skipped, direction="info"
    )
    recorder.record(
        "scan.columns_decoded", metrics.columns_decoded, direction="info"
    )

    # Guard 3: skipping 16 unread columns and filtering before decode is
    # measurably faster.
    assert speedup >= SPEEDUP_FLOOR, (
        f"late-materialized scan only {speedup:.2f}x faster than the classic "
        f"full-width gather (floor {SPEEDUP_FLOOR}x)"
    )
