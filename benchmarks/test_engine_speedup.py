"""Micro-benchmark guard: vectorized vs reference engine on a 3-join query.

Two assertions protect the tentpole claim of the columnar executor:

* **charged work is engine-invariant** — the simulated work model (the
  quantity every paper figure is built from) must be bit-identical between
  engines, so the speedup is a pure wall-clock effect;
* **the vectorized engine is measurably faster** — at least 3x the
  operator throughput (rows processed per wall-clock second, interleaved
  best-of-N runs) on a selective 3-join star query.

The timing table is emitted like every other benchmark artifact so the
harness report (``BENCH_*.json``) captures the speedup.
"""

from __future__ import annotations

import os
import random

from conftest import measure_speedup, print_experiment

from repro.catalog import ColumnType, make_schema
from repro.engine import Database, ExecutionEngine

# The acceptance floor is 3x; REPRO_SPEEDUP_FLOOR exists so noisy shared
# runners can lower the gate without editing code (never raise it in CI).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "3.0"))

THREE_JOIN_SQL = (
    "SELECT count(i.id) AS n "
    "FROM customers AS c, orders AS o, items AS i, products AS p "
    "WHERE c.region = 'west' "
    "AND c.id = o.customer_id AND o.id = i.order_id AND i.product_id = p.id"
)


def _build_database(
    num_customers: int = 2000,
    num_orders: int = 12000,
    num_items: int = 48000,
    num_products: int = 400,
    seed: int = 5,
) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        make_schema(
            "customers",
            [("id", ColumnType.INT), ("region", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "orders",
            [("id", ColumnType.INT), ("customer_id", ColumnType.INT)],
            primary_key="id",
            foreign_keys=[("customer_id", "customers", "id")],
        )
    )
    db.create_table(
        make_schema(
            "products",
            [("id", ColumnType.INT), ("category", ColumnType.TEXT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "items",
            [
                ("id", ColumnType.INT),
                ("order_id", ColumnType.INT),
                ("product_id", ColumnType.INT),
                ("quantity", ColumnType.INT),
            ],
            primary_key="id",
            foreign_keys=[
                ("order_id", "orders", "id"),
                ("product_id", "products", "id"),
            ],
        )
    )
    regions = ["west", "east", "north", "south"]
    db.load_rows(
        "customers", [(i + 1, regions[i % len(regions)]) for i in range(num_customers)]
    )
    db.load_rows(
        "orders",
        [(i + 1, rng.randint(1, num_customers)) for i in range(num_orders)],
    )
    db.load_rows(
        "products",
        [(i + 1, f"cat{i % 20}") for i in range(num_products)],
    )
    db.load_rows(
        "items",
        [
            (i + 1, rng.randint(1, num_orders), rng.randint(1, num_products), rng.randint(1, 9))
            for i in range(num_items)
        ],
    )
    db.finalize_load()
    return db


def test_vectorized_engine_speedup_on_three_join_query():
    db = _build_database()
    planned = db.plan(THREE_JOIN_SQL)
    assert len(planned.plan.join_nodes()) == 3, "expected a 3-join plan"

    (vectorized, reference), result = measure_speedup(
        "engine-speedup",
        "vectorized vs reference engine, 3-join star query",
        [
            db.executor_for(ExecutionEngine.VECTORIZED),
            db.executor_for(ExecutionEngine.REFERENCE),
        ],
        planned.plan,
    )

    # Guard 1: the vectorized path does no more charged work (it is exactly
    # the same work — the accounting is engine-invariant by construction).
    assert vectorized.total_work == reference.total_work
    assert vectorized.rows_processed == reference.rows_processed
    assert vectorized.result.rows == reference.result.rows

    speedup = result.metadata["speedup"]
    result.add_note(f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR}x)")
    print_experiment(result)

    # Guard 2: the columnar engine is measurably faster.
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.2f}x faster than reference "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
