"""Table VI: per-query runtime after re-optimization relative to perfect-(17).

Paper claim: after re-optimization many more queries run close to the
perfect-estimate plan than before (Table II), and the ">5x" tail shrinks.
"""

from repro.bench.experiments import table2, table6

from conftest import print_experiment


def test_table6_reopt_relative_runtime(benchmark, context):
    result = benchmark.pedantic(table6, args=(context,), rounds=1, iterations=1)
    print_experiment(result)
    before = table2(context)

    after_counts = dict(zip(result.column("relative_runtime"), result.column("num_queries")))
    before_counts = dict(zip(before.column("relative_runtime"), before.column("num_queries")))
    assert sum(after_counts.values()) == len(context.job_queries)
    # The slow tail shrinks after re-optimization...
    assert after_counts["> 5.0"] <= before_counts["> 5.0"]
    # ...and the near-optimal bucket does not shrink by much (paper: it grows).
    assert after_counts["0.8 - 1.2"] >= before_counts["0.8 - 1.2"] - 2
