"""Ablations of the re-optimization design choices called out in DESIGN.md.

* trigger site: materializing the lowest vs the highest violating join;
* temp-table statistics: re-planning with vs without ANALYZE on the
  materialized table;
* materializing simulation vs pipelined mid-query re-optimization (the
  paper's future-work variant).
"""

from repro.bench.experiments import (
    ablation_midquery,
    ablation_temp_table_stats,
    ablation_trigger_site,
)

from conftest import print_experiment


def test_ablation_trigger_site(benchmark, context):
    result = benchmark.pedantic(
        ablation_trigger_site, args=(context,), rounds=1, iterations=1
    )
    print_experiment(result)
    execs = dict(zip(result.column("variant"), result.column("execute_s")))
    # Both variants are functional; the paper's lowest-join choice must not be
    # dramatically worse than the alternative.
    assert execs["reopt-lowest"] <= execs["reopt-highest"] * 1.5


def test_ablation_temp_table_stats(benchmark, context):
    result = benchmark.pedantic(
        ablation_temp_table_stats, args=(context,), rounds=1, iterations=1
    )
    print_experiment(result)
    execs = dict(zip(result.column("variant"), result.column("execute_s")))
    # Re-planning with fresh statistics on the temporary table should not lose
    # to re-planning blind by a large margin.
    assert execs["reopt-analyze"] <= execs["reopt-no-analyze"] * 1.25


def test_ablation_midquery_vs_materializing(benchmark, context):
    result = benchmark.pedantic(
        ablation_midquery, args=(context,), rounds=1, iterations=1
    )
    print_experiment(result)
    execs = dict(zip(result.column("variant"), result.column("execute_s")))
    # The pipelined variant never pays the materialization surcharge, so it is
    # at least as fast as the paper's materializing simulation.
    assert execs["midquery"] <= execs["reopt-32"] * 1.01
