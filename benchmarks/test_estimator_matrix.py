"""Estimator-strategy matrix: Q-error distributions and re-plan counts.

Claim under test: the feedback estimator, seeded by cardinalities harvested
from run 1, re-plans less and mis-estimates joins less on run 2 of the same
workload than the statistics-only baseline, while the default ``stats``
strategy stays deterministic across runs (it is the strategy the gated paper
figures run under).
"""

from repro.bench.experiments import estimator_matrix

from conftest import print_experiment


def _cell(result, estimator, run, column):
    index = result.headers.index(column)
    for row in result.rows:
        if row[0] == estimator and row[1] == run:
            return row[index]
    raise AssertionError(f"no row for {estimator} run {run}")


def test_estimator_matrix(benchmark, context, recorder):
    result = benchmark.pedantic(estimator_matrix, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    estimators = sorted(set(result.column("estimator")))
    assert estimators == ["feedback", "sampling", "stats", "upper-bound"]

    # Statistics-only strategies are deterministic across runs.
    for estimator in ("stats", "sampling", "upper-bound"):
        for column in ("replans", "qerr_p50", "qerr_p90", "qerr_max"):
            assert _cell(result, estimator, 1, column) == _cell(
                result, estimator, 2, column
            ), (estimator, column)

    # Feedback warms up: run 2 re-plans less and lands a tighter join-error
    # tail than the statistics-only baseline on the same run.
    feedback_replans = _cell(result, "feedback", 2, "replans")
    stats_replans = _cell(result, "stats", 2, "replans")
    feedback_p90 = _cell(result, "feedback", 2, "qerr_p90")
    stats_p90 = _cell(result, "stats", 2, "qerr_p90")
    assert feedback_replans < stats_replans
    assert feedback_p90 <= stats_p90
    assert _cell(result, "feedback", 2, "replans") <= _cell(
        result, "feedback", 1, "replans"
    )

    # Trajectory metrics (informational: workload-slice characteristics, not
    # gated paper figures).
    recorder.record("estimators.stats.run2_replans", stats_replans, direction="info")
    recorder.record(
        "estimators.feedback.run2_replans", feedback_replans, direction="info"
    )
    recorder.record("estimators.stats.run2_qerr_p90", stats_p90, direction="info")
    recorder.record(
        "estimators.feedback.run2_qerr_p90", feedback_p90, direction="info"
    )
    recorder.record(
        "estimators.upper_bound.run2_replans",
        _cell(result, "upper-bound", 2, "replans"),
        direction="info",
    )
    recorder.record(
        "estimators.sampling.run2_qerr_p90",
        _cell(result, "sampling", 2, "qerr_p90"),
        direction="info",
    )
