"""Figure 6: the re-optimization rewrite (CREATE TEMP TABLE + final SELECT).

The paper shows how a mis-estimated sub-join is materialized into a temporary
table and the remainder of the query is rewritten against it.  We reproduce
the rewrite on a long-running workload query and check its structure.
"""

from repro.bench.experiments import figure6

from conftest import print_experiment


def test_fig6_rewrite_example(benchmark, context):
    result = benchmark.pedantic(figure6, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    rewritten = result.metadata["rewritten_sql"]
    original = result.metadata["original_sql"]
    assert "CREATE TEMP TABLE" in rewritten
    assert "SELECT" in rewritten
    # The rewrite references the materialized temporary table in the final query.
    assert "__temp" in rewritten
    # At least one materialization step happened, each with a Q-error above 1.
    assert len(result.rows) >= 1
    assert all(row[2] > 1.0 for row in result.rows)
    assert original.startswith("SELECT")
