"""Figure 5: iterative selective improvement of cardinality estimates.

Paper claim: LEO-style feedback (fix the lowest mis-estimated operator, rerun)
can need many iterations before a good plan emerges, and intermediate
iterations can be *slower* than the original plan.  We reproduce the loop on
the three worst workload queries and assert it converges and eventually
reaches (near-)perfect execution time.
"""

from repro.bench.experiments import figure5

from conftest import print_experiment


def test_fig5_iterative_estimate_correction(benchmark, context, recorder):
    result = benchmark.pedantic(figure5, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    queries = sorted(set(result.column("query")))
    assert len(queries) == 3
    final_exec_total = 0.0
    iterations_total = 0
    for name in queries:
        rows = [row for row in result.rows if row[0] == name]
        iterations = [row[1] for row in rows]
        exec_series = [row[2] for row in rows]
        perfect = rows[0][3]
        final_exec_total += exec_series[-1]
        iterations_total += len(iterations)
        # The loop runs at least one iteration and terminates.
        assert iterations == list(range(len(iterations)))
        # The final plan is no slower than the starting plan and approaches
        # the perfect-estimate plan within a small factor.
        assert exec_series[-1] <= exec_series[0] * 1.05
        assert exec_series[-1] <= max(perfect * 3.0, perfect + 0.5)

    # Headline metrics for the CI trajectory gate (deterministic per scale).
    recorder.record("fig5.final_exec_s", final_exec_total, direction="lower")
    recorder.record("fig5.iterations_total", iterations_total, direction="info")
