"""Table I: number of cardinality estimates on joins of N tables.

Paper claim: the optimizer makes thousands of cardinality estimates across
the workload, the vast majority of them for multi-table joins, with the count
peaking at mid-sized joins.  Our enumeration reproduces the same hump-shaped
profile (single-table estimates equal the number of table references; join
estimates dominate).
"""

from repro.bench.experiments import table1

from conftest import print_experiment


def test_table1_estimate_counts(benchmark, context):
    result = benchmark.pedantic(table1, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    sizes = result.column("tables_in_join")
    counts = result.column("num_estimates")
    by_size = dict(zip(sizes, counts))
    # Single-table estimates equal the total number of table references.
    expected_base = sum(q.num_tables for q in context.job_queries)
    assert by_size[1] == expected_base
    # Join estimates dominate base-table estimates.
    join_estimates = sum(count for size, count in by_size.items() if size >= 2)
    assert join_estimates > by_size[1]
    # The distribution peaks strictly above single joins (hump shape).
    peak_size = max(by_size, key=by_size.get)
    assert peak_size >= 2
