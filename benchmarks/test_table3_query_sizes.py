"""Table III: number of workload queries with a given number of tables.

The generated workload matches the paper's distribution exactly (113 queries,
4 to 17 tables).
"""

from repro.bench.experiments import table3
from repro.workloads.job import EXPECTED_TABLE_COUNTS

from conftest import print_experiment


def test_table3_query_size_distribution(benchmark, context):
    result = benchmark.pedantic(table3, args=(context,), rounds=1, iterations=1)
    print_experiment(result)

    distribution = dict(zip(result.column("num_tables"), result.column("num_queries")))
    if len(context.job_queries) == 113:
        assert distribution == EXPECTED_TABLE_COUNTS
        assert sum(distribution.values()) == 113
    else:
        # Quick runs restrict the workload; the distribution must still be a
        # sub-multiset of the paper's Table III.
        for tables, count in distribution.items():
            assert count <= EXPECTED_TABLE_COUNTS[tables]
