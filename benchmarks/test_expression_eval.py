"""Micro-benchmark guard: vectorized vs row-closure expression evaluation.

The unified expression subsystem compiles every predicate once into two
targets — per-row closures (the reference oracle) and columnar batch
evaluators (the vectorized engine).  This guard pins the point of the second
target: on a 100k-row scan whose WHERE clause exercises the expression tree
(arithmetic, a boolean connective, BETWEEN), the vectorized batch evaluation
must deliver at least 3x the operator throughput of the row-closure oracle,
while charging bit-identical work and producing identical rows.

The timing table is emitted like every other benchmark artifact so the
harness report (``BENCH_*.json``) captures the expression-eval speedup.
"""

from __future__ import annotations

import os
import random

from conftest import measure_speedup, print_experiment

from repro.catalog import ColumnType, make_schema
from repro.engine import Database, ExecutionEngine

# The acceptance floor is 3x; REPRO_EXPR_SPEEDUP_FLOOR exists so noisy
# shared runners can lower the gate without editing code (never raise it
# in CI).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_EXPR_SPEEDUP_FLOOR", "3.0"))

NUM_ROWS = 100_000

#: A filter that walks the expression tree: comparisons over arithmetic,
#: an OR of leaf predicates, and a BETWEEN — all over one 100k-row scan.
EXPRESSION_FILTER_SQL = (
    "SELECT count(*) AS n FROM measurements AS m "
    "WHERE m.a * 2 + m.b > 120 "
    "AND (m.c BETWEEN 10 AND 900 OR m.b % 7 = 3)"
)


def _build_database(num_rows: int = NUM_ROWS, seed: int = 11) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        make_schema(
            "measurements",
            [
                ("id", ColumnType.INT),
                ("a", ColumnType.INT),
                ("b", ColumnType.INT),
                ("c", ColumnType.INT),
            ],
            primary_key="id",
        )
    )
    db.load_rows(
        "measurements",
        [
            (
                i,
                rng.randrange(0, 100),
                rng.randrange(0, 100),
                rng.randrange(0, 1000),
            )
            for i in range(num_rows)
        ],
    )
    db.finalize_load()
    return db


def test_vectorized_expression_evaluation_speedup(recorder):
    db = _build_database()
    planned = db.plan(EXPRESSION_FILTER_SQL)

    (vectorized, reference), result = measure_speedup(
        "expression-eval-speedup",
        "vectorized batch evaluators vs row closures, 100k-row filter",
        [
            db.executor_for(ExecutionEngine.VECTORIZED),
            db.executor_for(ExecutionEngine.REFERENCE),
        ],
        planned.plan,
    )

    # Guard 1: charged work and results are engine-invariant.
    assert vectorized.total_work == reference.total_work
    assert vectorized.result.rows == reference.result.rows
    # The filter is genuinely selective but far from empty.
    count = vectorized.result.rows[0][0]
    assert 0 < count < NUM_ROWS

    speedup = result.metadata["speedup"]
    result.add_note(f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR}x)")
    print_experiment(result)
    recorder.record("expr.eval_speedup", speedup, direction="higher")
    recorder.record(
        "expr.vectorized_rows_per_sec",
        result.metadata["vectorized_rows_per_sec"],
        direction="info",
    )

    # Guard 2: batch expression evaluation is measurably faster.
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized expression evaluation only {speedup:.2f}x faster than "
        f"the row-closure oracle (floor {SPEEDUP_FLOOR}x)"
    )
