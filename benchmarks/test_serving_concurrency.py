"""Concurrent load driver for the threaded serving layer.

Drives the same read-only statement mix through a :class:`repro.server.Server`
at 1, 4 and 16 client threads and reports p50/p99 end-to-end latency and
served rows/sec per concurrency level.  Every served result is differentially
checked against the serially computed answer — one corrupted row anywhere
fails the run, which is the tentpole's zero-cross-session-corruption gate.

Wall-clock metrics land in the trajectory report as ``info`` (reported,
never gated — shared CI runners make serving latency non-deterministic).
"""

from __future__ import annotations

import threading
import time

from conftest import print_experiment

from repro.bench.reporting import ExperimentResult
from repro.server import Server, ServerConfig
from repro.workloads.stocks import StocksConfig, build_stocks_database

CLIENT_COUNTS = (1, 4, 16)
STATEMENTS_PER_CLIENT = 12

#: Read-only statement mix every client cycles through.
STATEMENT_MIX = (
    "SELECT count(t.id) AS n FROM trades AS t",
    "SELECT c.symbol AS s, count(t.id) AS n FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id GROUP BY c.symbol ORDER BY n DESC, s LIMIT 10",
    "SELECT c.symbol AS s, sum(t.shares) AS v FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id AND t.shares > 5000 "
    "GROUP BY c.symbol ORDER BY v DESC, s LIMIT 10",
    "SELECT t.company_id AS cid, count(t.id) AS n FROM trades AS t "
    "WHERE t.shares > 2500 GROUP BY t.company_id ORDER BY n DESC, cid LIMIT 20",
)


def _drive(server, expected, clients: int):
    """Run the mix from ``clients`` threads; return (wall_seconds, errors)."""
    errors = []
    barrier = threading.Barrier(clients + 1)

    def client() -> None:
        try:
            session = server.session()
            barrier.wait()
            for i in range(STATEMENTS_PER_CLIENT):
                sql = STATEMENT_MIX[i % len(STATEMENT_MIX)]
                result = session.execute(sql, timeout=60)
                # Differential check: served rows must match the serial
                # answer exactly (order included).
                assert list(result.rows) == expected[sql], sql
        except BaseException as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, errors


def test_serving_concurrency_latency_and_throughput(recorder):
    database = build_stocks_database(
        StocksConfig(num_companies=200, num_trades=5000)
    )
    expected = {sql: database.run(sql).rows for sql in STATEMENT_MIX}

    result = ExperimentResult(
        experiment_id="serving-concurrency",
        title="threaded serving: latency/throughput vs client count "
        f"({STATEMENTS_PER_CLIENT} statements per client)",
        headers=["clients", "statements", "p50_ms", "p99_ms", "rows_per_sec"],
    )

    for clients in CLIENT_COUNTS:
        server = Server(
            database,
            ServerConfig(workers=4, queue_depth=128, admission_timeout=10.0),
        )
        with server:
            wall, errors = _drive(server, expected, clients)
        assert errors == [], errors
        stats = server.stats
        assert stats.statements == clients * STATEMENTS_PER_CLIENT
        assert stats.errors == 0 and stats.shed == 0
        rows_per_sec = stats.rows_returned / max(wall, 1e-9)
        p50_ms = stats.p50_seconds * 1e3
        p99_ms = stats.p99_seconds * 1e3
        result.add_row(
            clients,
            stats.statements,
            f"{p50_ms:.2f}",
            f"{p99_ms:.2f}",
            f"{rows_per_sec:.0f}",
        )
        recorder.record(f"serving.c{clients}.p50_ms", p50_ms, direction="info")
        recorder.record(f"serving.c{clients}.p99_ms", p99_ms, direction="info")
        recorder.record(
            f"serving.c{clients}.rows_per_sec", rows_per_sec, direction="info"
        )

    result.add_note(
        "every served result differentially checked against the serial answer"
    )
    print_experiment(result)
