"""Micro-benchmark guard: vectorized vs reference hash aggregation.

The grouped-aggregation analogue of ``test_engine_speedup.py``: a top-20
"symbols by traded volume" query over the stocks workload (join + GROUP BY +
SUM/AVG/COUNT(*) + ORDER BY DESC + LIMIT) must run at least 3x the
operator throughput (rows processed per wall-clock second, interleaved best
of N) on the vectorized engine, while charging bit-identical work and
producing identical rows — the engine-invariance the differential fuzz suite
pins functionally.
"""

from __future__ import annotations

import os

from conftest import measure_speedup, print_experiment

from repro.engine import ExecutionEngine
from repro.workloads.stocks import StocksConfig, build_stocks_database

# The acceptance floor is 3x; REPRO_AGG_SPEEDUP_FLOOR exists so noisy shared
# runners can lower the gate without editing code (never raise it in CI).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_AGG_SPEEDUP_FLOOR", "3.0"))

GROUPED_STOCKS_SQL = (
    "SELECT c.symbol, count(*) AS n, sum(t.shares) AS volume, "
    "avg(t.shares) AS avg_shares "
    "FROM company AS c, trades AS t "
    "WHERE c.id = t.company_id "
    "GROUP BY c.symbol "
    "ORDER BY volume DESC "
    "LIMIT 20"
)


def test_vectorized_hash_aggregation_speedup_on_stocks_workload():
    db = build_stocks_database(StocksConfig())
    planned = db.plan(GROUPED_STOCKS_SQL)
    labels = [node.label() for node in planned.plan.walk()]
    assert any(label.startswith("HashAggregate") for label in labels)
    assert any(label.startswith("Sort") for label in labels)
    assert any(label.startswith("Limit") for label in labels)

    (vectorized, reference), result = measure_speedup(
        "aggregate-speedup",
        "vectorized vs reference engine, grouped stocks query",
        [
            db.executor_for(ExecutionEngine.VECTORIZED),
            db.executor_for(ExecutionEngine.REFERENCE),
        ],
        planned.plan,
    )

    # Guard 1: charged work and results are engine-invariant.
    assert vectorized.total_work == reference.total_work
    assert vectorized.rows_processed == reference.rows_processed
    assert vectorized.result.rows == reference.result.rows
    assert len(vectorized.result.rows) == 20

    speedup = result.metadata["speedup"]
    result.add_note(f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR}x)")
    print_experiment(result)

    # Guard 2: vectorized hash aggregation is measurably faster.
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized grouped aggregation only {speedup:.2f}x faster than "
        f"reference (floor {SPEEDUP_FLOOR}x)"
    )
