"""Micro-benchmark guard: zone-map partition pruning vs full-table scans.

The storage analogue of ``test_parallel_speedup.py``: the same selective
range query over the stocks trades table runs against two copies of the
data — one range-partitioned on ``company_id`` into 16 shards, one plain
single-shard — and the partitioned scan must finish at least 3x faster.
The speedup comes from the planner/executor pruning every shard whose zone
map proves the ``BETWEEN`` can never be TRUE, so only 1 of 16 partitions is
read; both executions must return identical rows, and the pruned EXPLAIN
must say so (``Partitions: 1/16 scanned``).

The predicate targets a mid-range of company ids: the workload's Zipf skew
concentrates volume on the low ids, so a tail shard stays small and the
pruned scan touches only a sliver of the table.
"""

from __future__ import annotations

import dataclasses
import os

from conftest import print_experiment

from repro.bench.reporting import ExperimentResult
from repro.catalog import PartitionSpec
from repro.engine import Database
from repro.workloads.stocks import StocksConfig, generate_stocks_rows, stocks_schemas

# The acceptance floor is 3x; REPRO_PRUNING_SPEEDUP_FLOOR exists so noisy
# shared runners can lower the gate without editing code (never raise it in
# CI).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_PRUNING_SPEEDUP_FLOOR", "3.0"))

NUM_PARTITIONS = 16

#: A selective range over mid-tail company ids — prunable to one shard.
PRUNABLE_SQL = (
    "SELECT count(t.id) AS n FROM trades AS t "
    "WHERE t.company_id BETWEEN 2010 AND 2200"
)

BEST_OF = 5


def build_databases(config: StocksConfig):
    """The same stocks rows loaded twice: partitioned and single-shard."""
    company_schema, trades_schema = stocks_schemas()
    step = config.num_companies // NUM_PARTITIONS
    spec = PartitionSpec(
        method="range",
        column="company_id",
        bounds=tuple(range(step + 1, config.num_companies, step)),
    )
    companies, trades = generate_stocks_rows(config)
    databases = []
    for partition_spec in (spec, None):
        db = Database()
        db.create_table(company_schema)
        db.create_table(
            dataclasses.replace(trades_schema, partition_spec=partition_spec)
        )
        db.load_rows("company", companies)
        db.load_rows("trades", trades)
        db.finalize_load()
        databases.append(db)
    return databases


def test_partition_pruning_speedup(recorder):
    partitioned_db, plain_db = build_databases(StocksConfig())

    # Guard 1: the plan itself advertises the prune, k < n.
    explain = partitioned_db.explain(PRUNABLE_SQL)
    assert f"Partitions: 1/{NUM_PARTITIONS} scanned" in explain, explain

    planned = [partitioned_db.plan(PRUNABLE_SQL), plain_db.plan(PRUNABLE_SQL)]
    executors = [partitioned_db.executor, plain_db.executor]
    best = [None, None]
    # Interleaved best-of-N so a load spike on a shared runner degrades both
    # sides alike (same policy as conftest.measure_speedup, which cannot be
    # used directly here because the two sides plan against different
    # catalogs).
    for _ in range(BEST_OF):
        for i in range(2):
            execution = executors[i].execute(planned[i].plan)
            if best[i] is None or execution.wall_seconds < best[i].wall_seconds:
                best[i] = execution
    pruned, full = best

    # Guard 2: pruning never changes the answer.
    assert pruned.result.rows == full.result.rows

    # The pruned side reads fewer rows by design, so rows-processed/sec would
    # cancel the win; the guarded quantity is query throughput — identical
    # work answered in less wall time.
    speedup = full.wall_seconds / max(pruned.wall_seconds, 1e-12)
    table_rows = plain_db.catalog.table("trades").row_count
    result = ExperimentResult(
        experiment_id="partition-pruning-speedup",
        title=(
            f"zone-map pruning ({NUM_PARTITIONS} range shards) vs full scan, "
            f"selective stocks query (best of {BEST_OF})"
        ),
        headers=["storage", "rows_processed", "wall_ms", "table_rows_per_sec"],
    )
    for label, execution in (("partitioned", pruned), ("single-shard", full)):
        result.add_row(
            label,
            execution.rows_processed,
            execution.wall_seconds * 1e3,
            table_rows / max(execution.wall_seconds, 1e-12),
        )
    result.metadata["speedup"] = speedup
    result.add_note(f"speedup: {speedup:.1f}x (floor: {SPEEDUP_FLOOR}x)")
    print_experiment(result)
    recorder.record("storage.pruning_speedup", speedup, direction="higher")
    recorder.record("storage.partitions", NUM_PARTITIONS, direction="info")
    recorder.record(
        "storage.pruned_rows_processed", pruned.rows_processed, direction="info"
    )

    # Guard 3: skipping 15 of 16 shards is measurably faster.
    assert speedup >= SPEEDUP_FLOOR, (
        f"pruned scan only {speedup:.2f}x faster than the full scan "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
