"""Tables IV/V: the Nasdaq companies/trades skew example (Section IV-C).

Paper claim: with a predicate on a popular symbol, the uniformity assumption
makes the optimizer underestimate the join size by a large factor; neither
PostgreSQL nor a commercial system estimated it correctly.  We reproduce the
underestimate on the synthetic trading dataset.
"""

from repro.bench.experiments import table45

from conftest import print_experiment


def test_table45_skew_underestimates_popular_symbols(benchmark):
    result = benchmark.pedantic(table45, rounds=1, iterations=1)
    print_experiment(result)

    estimates = result.column("estimated_rows")
    actuals = result.column("actual_rows")
    q_errors = result.column("q_error")
    # Every popular symbol's join size is underestimated, the most popular by
    # a large factor (the "APPL" row of the paper's example).
    assert all(actual > estimate for estimate, actual in zip(estimates, actuals))
    assert max(q_errors) > 10
